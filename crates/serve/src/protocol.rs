//! The NDJSON wire protocol: one JSON object per line in both directions.
//!
//! **Requests** (client → server) carry an `"op"` field:
//!
//! | op          | fields                                   | reply |
//! |-------------|------------------------------------------|-------|
//! | `ingest`    | `stream`, `items` *or* `batch`           | `{"ok":true,"accepted":n}` or `{"ok":false,"error":"overloaded","accepted":a,"shed":s}` |
//! | `bind`      | `stream`, `defense`                      | `{"ok":true,"stream":k,"defense":d}`; must precede the stream's first ingest |
//! | `subscribe` | `stream`, optional `frame` (`json`/`binary`), optional `from` (`earliest` / `window:<n>`) | `{"ok":true,"stream":k}`, then events; with `from`, logged releases replay first (requires `--wal-dir`) |
//! | `stats`     | —                                        | per-shard counters |
//! | `ping`      | —                                        | `{"ok":true,"pong":true}` |
//! | `shutdown`  | —                                        | `{"ok":true,"draining":true}`, then drain + exit |
//!
//! Every request gets exactly one reply line, in request order. Clients may
//! pipeline requests; backpressure is the reply stream itself plus the
//! bounded per-shard ingress queue behind it.
//!
//! **Events** (server → subscriber) carry an `"event"` field instead:
//!
//! | event           | fields                                              | meaning |
//! |-----------------|-----------------------------------------------------|---------|
//! | `release`       | `stream`, `stream_len`, `itemsets`                  | full sanitized snapshot (same shape as CLI `protect` output) |
//! | `release_delta` | `stream`, `stream_len`, `base_len`, `added`, `changed`, `removed` | what changed vs. the publication at `base_len`; apply to a reconstructed state at `base_len` |
//! | `closed`        | `stream`                                            | stream drained during shutdown; no more releases follow |
//!
//! With `snapshot_every = 1` (the default) only `release` snapshots are
//! emitted — the legacy protocol. With `N > 1` every publication ships a
//! `release_delta`, and every `N`-th additionally ships the full `release`
//! snapshot, so a subscriber joining mid-stream syncs on the next snapshot
//! and rides O(churn) deltas from there ([`SubscriberState`] implements
//! that reconstruction, verifying each snapshot it was already synced for).

use bfly_common::{BinaryEntry, BinaryFrame, Error, FrameMode, ItemSet, Json, Result};
use bfly_core::{DefenseKind, ReleaseDelta, SanitizedItemset, SanitizedRelease};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Feed transactions into a stream. `batch` holds one itemset per
    /// transaction; the single-`items` wire form parses into a batch of one.
    Ingest {
        /// Stream key (tenant id).
        stream: String,
        /// Transactions, in arrival order.
        batch: Vec<ItemSet>,
    },
    /// Bind one stream to a non-default privacy defense. Must arrive before
    /// the stream's first accepted ingest (a pipeline's defense is fixed at
    /// creation); later binds are rejected.
    Bind {
        /// Stream key (tenant id).
        stream: String,
        /// Defense the stream's releases will be published under.
        defense: DefenseKind,
    },
    /// Turn this connection into a subscriber of a stream's releases.
    Subscribe {
        /// Stream key to subscribe to.
        stream: String,
        /// Encoding the subscriber wants its `release`/`release_delta`
        /// events in. Control events (`closed`) stay NDJSON either way.
        frame: FrameMode,
        /// Catch-up request: replay the stream's logged releases (from the
        /// WAL, oldest first) before live events. `None` = live only, the
        /// pre-WAL behavior. Requires the server to run with `--wal-dir`.
        from: Option<CatchUp>,
    },
    /// Ask for per-shard counters.
    Stats,
    /// Liveness probe.
    Ping,
    /// Graceful shutdown: drain queues, flush full windows, close
    /// subscribers, exit.
    Shutdown,
}

/// How far back a subscriber wants log-served catch-up to reach. The log's
/// horizon is whatever compaction retained — `earliest` means "everything
/// still on disk", not "since the stream began".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CatchUp {
    /// Every logged release still retained.
    Earliest,
    /// Logged releases at stream position `>= n`.
    Window(u64),
}

impl CatchUp {
    /// Lowest `stream_len` the subscriber wants replayed.
    pub fn min_len(self) -> u64 {
        match self {
            CatchUp::Earliest => 0,
            CatchUp::Window(n) => n,
        }
    }

    /// The wire spelling (`earliest` / `window:<n>`).
    pub fn wire(self) -> String {
        match self {
            CatchUp::Earliest => "earliest".to_string(),
            CatchUp::Window(n) => format!("window:{n}"),
        }
    }
}

impl std::str::FromStr for CatchUp {
    type Err = Error;

    fn from_str(s: &str) -> Result<CatchUp> {
        if s == "earliest" {
            return Ok(CatchUp::Earliest);
        }
        if let Some(n) = s.strip_prefix("window:") {
            return n
                .parse::<u64>()
                .map(CatchUp::Window)
                .map_err(|_| Error::Parse(format!("bad \"from\" window {n:?}")));
        }
        Err(Error::Parse(format!(
            "bad \"from\" {s:?} (expected \"earliest\" or \"window:<n>\")"
        )))
    }
}

impl Request {
    /// Parse one request frame.
    pub fn from_json(v: &Json) -> Result<Request> {
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| Error::Parse("request missing \"op\"".into()))?;
        match op {
            "ingest" => {
                let stream = required_stream(v)?;
                let batch = if let Some(items) = v.get("items") {
                    vec![parse_itemset(items)?]
                } else if let Some(batch) = v.get("batch").and_then(Json::as_array) {
                    batch.iter().map(parse_itemset).collect::<Result<_>>()?
                } else {
                    return Err(Error::Parse("ingest needs \"items\" or \"batch\"".into()));
                };
                Ok(Request::Ingest { stream, batch })
            }
            "bind" => {
                let stream = required_stream(v)?;
                let name = v
                    .get("defense")
                    .and_then(Json::as_str)
                    .ok_or_else(|| Error::Parse("bind missing \"defense\"".into()))?;
                // Unknown names die here with the valid list — the wire
                // twin of the CLI's --defense validation.
                let defense = name.parse::<DefenseKind>()?;
                Ok(Request::Bind { stream, defense })
            }
            "subscribe" => {
                let frame = match v.get("frame") {
                    None => FrameMode::default(),
                    Some(f) => f
                        .as_str()
                        .ok_or_else(|| Error::Parse("\"frame\" must be a string".into()))?
                        .parse::<FrameMode>()?,
                };
                let from = match v.get("from") {
                    None => None,
                    Some(f) => Some(
                        f.as_str()
                            .ok_or_else(|| Error::Parse("\"from\" must be a string".into()))?
                            .parse::<CatchUp>()?,
                    ),
                };
                Ok(Request::Subscribe {
                    stream: required_stream(v)?,
                    frame,
                    from,
                })
            }
            "stats" => Ok(Request::Stats),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(Error::Parse(format!("unknown op {other:?}"))),
        }
    }

    /// Encode back to the wire form (clients use this; the server only
    /// parses).
    pub fn to_json(&self) -> Json {
        match self {
            Request::Ingest { stream, batch } => Json::obj([
                ("op", Json::from("ingest")),
                ("stream", Json::from(stream.as_str())),
                (
                    "batch",
                    Json::Arr(batch.iter().map(itemset_to_json).collect()),
                ),
            ]),
            Request::Bind { stream, defense } => Json::obj([
                ("op", Json::from("bind")),
                ("stream", Json::from(stream.as_str())),
                ("defense", Json::from(defense.name())),
            ]),
            Request::Subscribe {
                stream,
                frame,
                from,
            } => {
                // Defaults omit their fields: byte-compatible with the
                // pre-negotiation (and pre-WAL) wire forms.
                let mut fields = vec![
                    ("op", Json::from("subscribe")),
                    ("stream", Json::from(stream.as_str())),
                ];
                if *frame == FrameMode::Binary {
                    fields.push(("frame", Json::from(frame.name())));
                }
                if let Some(from) = from {
                    fields.push(("from", Json::Str(from.wire())));
                }
                Json::obj(fields)
            }
            Request::Stats => Json::obj([("op", Json::from("stats"))]),
            Request::Ping => Json::obj([("op", Json::from("ping"))]),
            Request::Shutdown => Json::obj([("op", Json::from("shutdown"))]),
        }
    }
}

fn required_stream(v: &Json) -> Result<String> {
    v.get("stream")
        .and_then(Json::as_str)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .ok_or_else(|| Error::Parse("request missing \"stream\"".into()))
}

fn parse_itemset(v: &Json) -> Result<ItemSet> {
    let ids = v
        .as_array()
        .ok_or_else(|| Error::Parse("transaction must be an array of item ids".into()))?;
    let items: Vec<u32> = ids
        .iter()
        .map(|id| {
            id.as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| Error::Parse("bad item id".into()))
        })
        .collect::<Result<_>>()?;
    Ok(ItemSet::from_ids(items))
}

fn itemset_to_json(items: &ItemSet) -> Json {
    Json::Arr(items.iter().map(|i| Json::from(i.id() as u64)).collect())
}

/// Reply to a fully accepted ingest.
pub fn ingest_ok(accepted: usize) -> Json {
    Json::obj([
        ("ok", Json::Bool(true)),
        ("accepted", Json::from(accepted as u64)),
    ])
}

/// Explicit load-shed reply: the shard's ingress queue was full for `shed`
/// of the batch's transactions. The client knows exactly how much was
/// dropped and can back off.
pub fn ingest_overloaded(accepted: usize, shed: usize) -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        ("error", Json::from("overloaded")),
        ("accepted", Json::from(accepted as u64)),
        ("shed", Json::from(shed as u64)),
    ])
}

/// Generic error reply.
pub fn error_reply(msg: &str) -> Json {
    Json::obj([("ok", Json::Bool(false)), ("error", Json::from(msg))])
}

/// A sanitized window publication event. `itemsets` is byte-identical to
/// the CLI `protect` line for the same release
/// ([`SanitizedRelease::wire_itemsets`]); the envelope adds the event tag
/// and the stream key.
pub fn release_event(stream: &str, stream_len: u64, release: &SanitizedRelease) -> Json {
    Json::obj([
        ("event", Json::from("release")),
        ("stream", Json::from(stream)),
        ("stream_len", Json::from(stream_len)),
        ("itemsets", release.wire_itemsets()),
    ])
}

/// A delta publication event: what changed against the release at
/// `base_len`. `added`/`changed` share the `{"itemset", "support"}` entry
/// shape with `release` snapshots; `removed` is an array of itemset
/// id-arrays.
pub fn release_delta_event(
    stream: &str,
    stream_len: u64,
    base_len: u64,
    delta: &ReleaseDelta,
) -> Json {
    Json::obj([
        ("event", Json::from("release_delta")),
        ("stream", Json::from(stream)),
        ("stream_len", Json::from(stream_len)),
        ("base_len", Json::from(base_len)),
        ("added", delta.wire_added()),
        ("changed", delta.wire_changed()),
        ("removed", delta.wire_removed()),
    ])
}

/// Stream-drained event: sent to a stream's subscribers after its final
/// flush during shutdown.
pub fn closed_event(stream: &str) -> Json {
    Json::obj([
        ("event", Json::from("closed")),
        ("stream", Json::from(stream)),
    ])
}

pub(crate) fn binary_entry(e: &SanitizedItemset) -> BinaryEntry {
    BinaryEntry {
        ids: e.itemset().items().iter().map(|i| i.id()).collect(),
        support: e.sanitized,
    }
}

fn itemset_ids(id: bfly_common::ItemsetId) -> Vec<u32> {
    id.resolve().items().iter().map(|i| i.id()).collect()
}

/// Serialize one `release` publication as outbound wire bytes in `mode`:
/// the NDJSON event line ([`release_event`]) or the equivalent binary
/// frame. Both carry exactly the sanitized entries — never true supports.
pub fn release_frame_bytes(
    mode: FrameMode,
    stream: &str,
    stream_len: u64,
    release: &SanitizedRelease,
) -> Arc<[u8]> {
    match mode {
        FrameMode::Json => crate::fanout::json_line(&release_event(stream, stream_len, release)),
        FrameMode::Binary => Arc::from(
            BinaryFrame::Release {
                stream: stream.to_string(),
                stream_len,
                entries: release.iter().map(binary_entry).collect(),
            }
            .encode()
            .into_boxed_slice(),
        ),
    }
}

/// Serialize one `release_delta` publication as outbound wire bytes in
/// `mode` (see [`release_frame_bytes`]).
pub fn release_delta_frame_bytes(
    mode: FrameMode,
    stream: &str,
    stream_len: u64,
    base_len: u64,
    delta: &ReleaseDelta,
) -> Arc<[u8]> {
    match mode {
        FrameMode::Json => {
            crate::fanout::json_line(&release_delta_event(stream, stream_len, base_len, delta))
        }
        FrameMode::Binary => Arc::from(
            BinaryFrame::ReleaseDelta {
                stream: stream.to_string(),
                stream_len,
                base_len,
                added: delta.added.iter().map(binary_entry).collect(),
                changed: delta.changed.iter().map(binary_entry).collect(),
                removed: delta.removed.iter().copied().map(itemset_ids).collect(),
            }
            .encode()
            .into_boxed_slice(),
        ),
    }
}

/// Serialize one catch-up `release` event from its logged wire entries.
/// The WAL stores exactly the binary release payload, so both encodings
/// here are byte-identical to what a live subscriber received when the
/// window was published (`binary_entries_json` output is string-identical
/// to [`release_event`]'s `itemsets` — the frame tests pin this).
pub fn catchup_release_frame_bytes(
    mode: FrameMode,
    stream: &str,
    stream_len: u64,
    entries: &[BinaryEntry],
) -> Arc<[u8]> {
    match mode {
        FrameMode::Json => crate::fanout::json_line(&Json::obj([
            ("event", Json::from("release")),
            ("stream", Json::from(stream)),
            ("stream_len", Json::from(stream_len)),
            ("itemsets", binary_entries_json(entries)),
        ])),
        FrameMode::Binary => Arc::from(
            BinaryFrame::Release {
                stream: stream.to_string(),
                stream_len,
                entries: entries.to_vec(),
            }
            .encode()
            .into_boxed_slice(),
        ),
    }
}

fn binary_entries_json(entries: &[BinaryEntry]) -> Json {
    Json::Arr(
        entries
            .iter()
            .map(|e| {
                Json::obj([
                    (
                        "itemset",
                        Json::Arr(e.ids.iter().map(|&id| Json::from(id as u64)).collect()),
                    ),
                    ("support", Json::from(e.support)),
                ])
            })
            .collect(),
    )
}

/// Convert a decoded binary event frame into the identical JSON event
/// document, so subscriber-side consumers ([`SubscriberState`], watchers)
/// handle one shape regardless of the negotiated encoding. `Ingest` is a
/// request, not an event — `None`.
pub fn binary_event_json(frame: &BinaryFrame) -> Option<Json> {
    match frame {
        BinaryFrame::Ingest { .. } => None,
        BinaryFrame::Release {
            stream,
            stream_len,
            entries,
        } => Some(Json::obj([
            ("event", Json::from("release")),
            ("stream", Json::from(stream.as_str())),
            ("stream_len", Json::from(*stream_len)),
            ("itemsets", binary_entries_json(entries)),
        ])),
        BinaryFrame::ReleaseDelta {
            stream,
            stream_len,
            base_len,
            added,
            changed,
            removed,
        } => Some(Json::obj([
            ("event", Json::from("release_delta")),
            ("stream", Json::from(stream.as_str())),
            ("stream_len", Json::from(*stream_len)),
            ("base_len", Json::from(*base_len)),
            ("added", binary_entries_json(added)),
            ("changed", binary_entries_json(changed)),
            (
                "removed",
                Json::Arr(
                    removed
                        .iter()
                        .map(|ids| Json::Arr(ids.iter().map(|&id| Json::from(id as u64)).collect()))
                        .collect(),
                ),
            ),
        ])),
    }
}

/// Client-side reconstruction of a stream's sanitized state from the event
/// feed: sync on the first full `release` snapshot, apply every
/// `release_delta` whose `base_len` matches the reconstructed position, and
/// verify any later snapshot the state was already caught up for. This is
/// how a subscriber that joined mid-stream (missing the early snapshots)
/// catches up under `snapshot_every > 1`.
#[derive(Clone, Debug, Default)]
pub struct SubscriberState {
    /// itemset ids → sanitized support (keyed by the wire id-array, which is
    /// canonical: item ids ascending).
    entries: BTreeMap<Vec<u64>, i64>,
    /// Stream position of the publication the state currently mirrors.
    last_len: Option<u64>,
    /// Full snapshots adopted.
    pub snapshots: u64,
    /// Deltas applied onto a matching base.
    pub deltas_applied: u64,
    /// Deltas skipped (not yet synced, or base mismatch — e.g. the delta
    /// preceding the snapshot we just adopted).
    pub deltas_skipped: u64,
    /// Snapshots that arrived while already caught up and matched the
    /// reconstructed state exactly.
    pub verified: u64,
    /// Snapshots skipped for predating the reconstructed position — WAL
    /// catch-up replay racing a live release can deliver these.
    pub snapshots_stale: u64,
}

impl SubscriberState {
    /// An unsynced subscriber (joined mid-stream, nothing seen yet).
    pub fn new() -> Self {
        SubscriberState::default()
    }

    /// Feed one subscriber event. `release`/`release_delta` update the
    /// state; other events are ignored.
    ///
    /// # Errors
    /// When a snapshot for a position the state was already reconstructed at
    /// does not match — a divergence that should be impossible if the server
    /// honors the delta invariant.
    pub fn observe(&mut self, event: &Json) -> Result<()> {
        match event.get("event").and_then(Json::as_str) {
            Some("release") => self.observe_snapshot(event),
            Some("release_delta") => self.observe_delta(event),
            _ => Ok(()),
        }
    }

    /// The reconstructed `itemset ids → sanitized support` view.
    pub fn entries(&self) -> &BTreeMap<Vec<u64>, i64> {
        &self.entries
    }

    /// Stream position the state mirrors (`None` before the first snapshot).
    pub fn stream_len(&self) -> Option<u64> {
        self.last_len
    }

    /// Has a snapshot been adopted yet?
    pub fn is_synced(&self) -> bool {
        self.last_len.is_some()
    }

    fn observe_snapshot(&mut self, event: &Json) -> Result<()> {
        let len = field_u64(event, "stream_len")?;
        let snapshot = entries_of(event.get("itemsets"), "itemsets")?;
        if self.last_len.is_some_and(|last| len < last) {
            // An older snapshot after a newer one: the tail of a log
            // catch-up replay overlapping a release that beat the
            // subscription. Position only moves forward.
            self.snapshots_stale += 1;
            return Ok(());
        }
        if self.last_len == Some(len) {
            // Already reconstructed this position from deltas: the snapshot
            // is a checksum, not new information.
            if self.entries != snapshot {
                return Err(Error::Parse(format!(
                    "snapshot at stream_len {len} diverges from delta-reconstructed state \
                     ({} vs {} entries)",
                    snapshot.len(),
                    self.entries.len()
                )));
            }
            self.verified += 1;
            return Ok(());
        }
        self.entries = snapshot;
        self.last_len = Some(len);
        self.snapshots += 1;
        Ok(())
    }

    fn observe_delta(&mut self, event: &Json) -> Result<()> {
        let base = field_u64(event, "base_len")?;
        let len = field_u64(event, "stream_len")?;
        if self.last_len != Some(base) {
            // Not synced yet, or this delta's base predates our snapshot.
            self.deltas_skipped += 1;
            return Ok(());
        }
        for ids in id_arrays_of(event.get("removed"), "removed")? {
            self.entries.remove(&ids);
        }
        for field in ["added", "changed"] {
            for (ids, support) in entries_of(event.get(field), field)? {
                self.entries.insert(ids, support);
            }
        }
        self.last_len = Some(len);
        self.deltas_applied += 1;
        Ok(())
    }
}

/// Parse a `[{"itemset": [...], "support": n}, ...]` array into the
/// reconstruction map shape.
fn entries_of(v: Option<&Json>, field: &str) -> Result<BTreeMap<Vec<u64>, i64>> {
    let arr = v
        .and_then(Json::as_array)
        .ok_or_else(|| Error::Parse(format!("event missing \"{field}\"")))?;
    let mut out = BTreeMap::new();
    for entry in arr {
        let ids = id_array(
            entry
                .get("itemset")
                .ok_or_else(|| Error::Parse("entry missing \"itemset\"".into()))?,
        )?;
        let support = entry
            .get("support")
            .and_then(Json::as_i64)
            .ok_or_else(|| Error::Parse("entry missing \"support\"".into()))?;
        out.insert(ids, support);
    }
    Ok(out)
}

/// Parse a `[[ids...], ...]` array (the `removed` field).
fn id_arrays_of(v: Option<&Json>, field: &str) -> Result<Vec<Vec<u64>>> {
    v.and_then(Json::as_array)
        .ok_or_else(|| Error::Parse(format!("event missing \"{field}\"")))?
        .iter()
        .map(id_array)
        .collect()
}

fn id_array(v: &Json) -> Result<Vec<u64>> {
    v.as_array()
        .ok_or_else(|| Error::Parse("itemset must be an id array".into()))?
        .iter()
        .map(|id| {
            id.as_u64()
                .ok_or_else(|| Error::Parse("bad item id".into()))
        })
        .collect()
}

fn field_u64(event: &Json, field: &str) -> Result<u64> {
    event
        .get(field)
        .and_then(Json::as_u64)
        .ok_or_else(|| Error::Parse(format!("event missing \"{field}\"")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfly_common::ItemsetId;
    use bfly_core::SanitizedItemset;

    fn entry(s: &str, t: u64, sanitized: i64) -> SanitizedItemset {
        SanitizedItemset {
            id: ItemsetId::intern(&s.parse::<ItemSet>().unwrap()),
            true_support: t,
            sanitized,
        }
    }

    fn ids(s: &str) -> Vec<u64> {
        s.parse::<ItemSet>()
            .unwrap()
            .iter()
            .map(|i| i.id() as u64)
            .collect()
    }

    #[test]
    fn ingest_round_trips() {
        let req = Request::Ingest {
            stream: "t1".into(),
            batch: vec![ItemSet::from_ids([3, 1, 2]), ItemSet::from_ids([9])],
        };
        let back = Request::from_json(&Json::parse(&req.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn single_items_form_parses_as_batch_of_one() {
        let v = Json::parse("{\"op\":\"ingest\",\"stream\":\"s\",\"items\":[4,2]}").unwrap();
        match Request::from_json(&v).unwrap() {
            Request::Ingest { stream, batch } => {
                assert_eq!(stream, "s");
                assert_eq!(batch, vec![ItemSet::from_ids([2, 4])]);
            }
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn control_ops_parse() {
        for (text, want) in [
            ("{\"op\":\"stats\"}", Request::Stats),
            ("{\"op\":\"ping\"}", Request::Ping),
            ("{\"op\":\"shutdown\"}", Request::Shutdown),
            (
                "{\"op\":\"subscribe\",\"stream\":\"k\"}",
                Request::Subscribe {
                    stream: "k".into(),
                    frame: FrameMode::Json,
                    from: None,
                },
            ),
            (
                "{\"op\":\"subscribe\",\"stream\":\"k\",\"frame\":\"binary\"}",
                Request::Subscribe {
                    stream: "k".into(),
                    frame: FrameMode::Binary,
                    from: None,
                },
            ),
            (
                "{\"op\":\"bind\",\"stream\":\"k\",\"defense\":\"privbasis\"}",
                Request::Bind {
                    stream: "k".into(),
                    defense: DefenseKind::PrivBasis,
                },
            ),
        ] {
            assert_eq!(
                Request::from_json(&Json::parse(text).unwrap()).unwrap(),
                want
            );
        }
    }

    #[test]
    fn malformed_requests_rejected() {
        for bad in [
            "{}",
            "{\"op\":\"frobnicate\"}",
            "{\"op\":\"ingest\"}",
            "{\"op\":\"ingest\",\"stream\":\"\",\"items\":[1]}",
            "{\"op\":\"ingest\",\"stream\":\"s\"}",
            "{\"op\":\"ingest\",\"stream\":\"s\",\"items\":[-1]}",
            "{\"op\":\"ingest\",\"stream\":\"s\",\"batch\":[7]}",
            "{\"op\":\"subscribe\"}",
            "{\"op\":\"subscribe\",\"stream\":\"k\",\"frame\":\"msgpack\"}",
            "{\"op\":\"bind\",\"stream\":\"k\"}",
        ] {
            let v = Json::parse(bad).unwrap();
            assert!(Request::from_json(&v).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn bind_round_trips_and_rejects_unknown_defense_with_valid_list() {
        let req = Request::Bind {
            stream: "t1".into(),
            defense: DefenseKind::Suppression,
        };
        let back = Request::from_json(&Json::parse(&req.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, req);

        let bad = Json::parse("{\"op\":\"bind\",\"stream\":\"k\",\"defense\":\"rot13\"}").unwrap();
        let err = Request::from_json(&bad).unwrap_err().to_string();
        assert!(err.contains("unknown defense"), "got {err}");
        for kind in DefenseKind::ALL {
            assert!(err.contains(kind.name()), "{err} missing {kind}");
        }
    }

    #[test]
    fn subscribe_frame_negotiation_round_trips_and_default_is_legacy() {
        let legacy = Request::Subscribe {
            stream: "k".into(),
            frame: FrameMode::Json,
            from: None,
        };
        // Default mode serializes without the field: the pre-negotiation
        // wire bytes, so old servers/clients interoperate.
        assert_eq!(
            legacy.to_json().to_string(),
            "{\"op\":\"subscribe\",\"stream\":\"k\"}"
        );
        let binary = Request::Subscribe {
            stream: "k".into(),
            frame: FrameMode::Binary,
            from: None,
        };
        let back =
            Request::from_json(&Json::parse(&binary.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, binary);
    }

    #[test]
    fn subscribe_from_parses_and_round_trips() {
        for (wire, want) in [
            ("earliest", CatchUp::Earliest),
            ("window:120", CatchUp::Window(120)),
        ] {
            let req = Request::Subscribe {
                stream: "k".into(),
                frame: FrameMode::Json,
                from: Some(want),
            };
            let text = req.to_json().to_string();
            assert!(text.contains(&format!("\"from\":\"{wire}\"")), "{text}");
            let back = Request::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, req);
        }
        assert_eq!(CatchUp::Earliest.min_len(), 0);
        assert_eq!(CatchUp::Window(40).min_len(), 40);
        for bad in [
            "{\"op\":\"subscribe\",\"stream\":\"k\",\"from\":\"latest\"}",
            "{\"op\":\"subscribe\",\"stream\":\"k\",\"from\":\"window:\"}",
            "{\"op\":\"subscribe\",\"stream\":\"k\",\"from\":\"window:-3\"}",
            "{\"op\":\"subscribe\",\"stream\":\"k\",\"from\":7}",
        ] {
            let v = Json::parse(bad).unwrap();
            assert!(Request::from_json(&v).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn catchup_frame_bytes_match_live_release_bytes() {
        // A catch-up frame built from logged wire entries must be
        // byte-identical (per encoding) to the live release frame for the
        // same publication — the guarantee behind log-served catch-up.
        let release = SanitizedRelease::new(vec![entry("b", 26, 25), entry("a", 30, 27)]);
        let logged: Vec<BinaryEntry> = release.iter().map(binary_entry).collect();
        for mode in [FrameMode::Json, FrameMode::Binary] {
            assert_eq!(
                catchup_release_frame_bytes(mode, "t0", 4, &logged),
                release_frame_bytes(mode, "t0", 4, &release),
            );
        }
    }

    #[test]
    fn stale_snapshots_after_catchup_are_skipped() {
        let mut sub = SubscriberState::new();
        sub.observe(&release_event(
            "t0",
            8,
            &SanitizedRelease::new(vec![entry("a", 30, 27)]),
        ))
        .unwrap();
        // The catch-up tail delivering an older position must not rewind
        // (or error on) the reconstructed state.
        sub.observe(&release_event(
            "t0",
            4,
            &SanitizedRelease::new(vec![entry("b", 26, 25)]),
        ))
        .unwrap();
        assert_eq!(sub.snapshots_stale, 1);
        assert_eq!(sub.stream_len(), Some(8));
        assert_eq!(sub.entries().get(&ids("a")), Some(&27));
    }

    #[test]
    fn frame_bytes_json_mode_matches_event_lines() {
        let release = SanitizedRelease::new(vec![entry("b", 26, 25), entry("a", 30, 27)]);
        let bytes = release_frame_bytes(FrameMode::Json, "t0", 4, &release);
        assert_eq!(
            String::from_utf8(bytes.to_vec()).unwrap(),
            format!("{}\n", release_event("t0", 4, &release))
        );
        let delta = ReleaseDelta {
            added: vec![entry("ab", 27, 24)],
            changed: vec![entry("b", 27, 26)],
            removed: vec![ItemsetId::intern(&"c".parse::<ItemSet>().unwrap())],
        };
        let bytes = release_delta_frame_bytes(FrameMode::Json, "t0", 6, 4, &delta);
        assert_eq!(
            String::from_utf8(bytes.to_vec()).unwrap(),
            format!("{}\n", release_delta_event("t0", 6, 4, &delta))
        );
    }

    #[test]
    fn binary_frame_bytes_decode_to_the_same_event_json() {
        use bfly_common::{Frame, FrameCodec};
        let release = SanitizedRelease::new(vec![entry("b", 26, 25), entry("a", 30, 27)]);
        let delta = ReleaseDelta {
            added: vec![entry("ab", 27, 24)],
            changed: vec![entry("b", 27, 26)],
            removed: vec![ItemsetId::intern(&"c".parse::<ItemSet>().unwrap())],
        };
        let mut codec = FrameCodec::new();
        codec.extend(&release_frame_bytes(FrameMode::Binary, "t0", 4, &release));
        codec.extend(&release_delta_frame_bytes(
            FrameMode::Binary,
            "t0",
            6,
            4,
            &delta,
        ));
        for want in [
            release_event("t0", 4, &release),
            release_delta_event("t0", 6, 4, &delta),
        ] {
            let frame = codec.next_frame().unwrap().unwrap();
            let Frame::Binary(bin) = frame else {
                panic!("expected a binary frame, got {frame:?}");
            };
            // The converted event is string-identical to the NDJSON form —
            // one shape for SubscriberState regardless of encoding.
            assert_eq!(
                binary_event_json(&bin).unwrap().to_string(),
                want.to_string()
            );
        }
    }

    #[test]
    fn reply_shapes() {
        assert_eq!(ingest_ok(3).to_string(), "{\"accepted\":3,\"ok\":true}");
        let shed = ingest_overloaded(1, 2);
        assert_eq!(shed.get("error").unwrap().as_str(), Some("overloaded"));
        assert_eq!(shed.get("shed").unwrap().as_u64(), Some(2));
        assert_eq!(shed.get("ok"), Some(&Json::Bool(false)));
        let closed = closed_event("k");
        assert_eq!(closed.get("event").unwrap().as_str(), Some("closed"));
    }

    #[test]
    fn delta_event_wire_shape() {
        let d = ReleaseDelta {
            added: vec![entry("a", 30, 27)],
            changed: vec![entry("ab", 40, 38)],
            removed: vec![ItemsetId::intern(&"b".parse::<ItemSet>().unwrap())],
        };
        let ev = release_delta_event("t0", 9, 5, &d);
        assert_eq!(ev.get("event").unwrap().as_str(), Some("release_delta"));
        assert_eq!(ev.get("stream").unwrap().as_str(), Some("t0"));
        assert_eq!(ev.get("stream_len").unwrap().as_u64(), Some(9));
        assert_eq!(ev.get("base_len").unwrap().as_u64(), Some(5));
        for (field, want) in [("added", 1), ("changed", 1), ("removed", 1)] {
            assert_eq!(ev.get(field).unwrap().as_array().unwrap().len(), want);
        }
    }

    #[test]
    fn subscriber_reconstructs_from_snapshot_and_deltas() {
        let mut sub = SubscriberState::new();

        // A delta arriving before any snapshot must be skipped, not
        // misapplied — a mid-stream joiner sees these first.
        let early = release_delta_event(
            "t0",
            3,
            2,
            &ReleaseDelta {
                added: vec![entry("a", 30, 27)],
                ..ReleaseDelta::default()
            },
        );
        sub.observe(&early).unwrap();
        assert!(!sub.is_synced());
        assert_eq!(sub.deltas_skipped, 1);
        assert!(sub.entries().is_empty());

        // Sync on the first full snapshot.
        let snap = release_event(
            "t0",
            4,
            &SanitizedRelease::new(vec![entry("b", 26, 25), entry("a", 30, 27)]),
        );
        sub.observe(&snap).unwrap();
        assert_eq!(sub.stream_len(), Some(4));
        assert_eq!(sub.snapshots, 1);

        // Apply a matching delta: ab appears, b shifts, c (never published
        // here) is removed as a no-op.
        let d = ReleaseDelta {
            added: vec![entry("ab", 27, 24)],
            changed: vec![entry("b", 27, 26)],
            removed: vec![ItemsetId::intern(&"c".parse::<ItemSet>().unwrap())],
        };
        sub.observe(&release_delta_event("t0", 6, 4, &d)).unwrap();
        assert_eq!(sub.deltas_applied, 1);
        assert_eq!(sub.stream_len(), Some(6));
        assert_eq!(sub.entries().get(&ids("a")), Some(&27));
        assert_eq!(sub.entries().get(&ids("b")), Some(&26));
        assert_eq!(sub.entries().get(&ids("ab")), Some(&24));
        assert_eq!(sub.entries().len(), 3);

        // Non-release events are ignored.
        sub.observe(&closed_event("t0")).unwrap();

        // A snapshot for the position we already reconstructed verifies it
        // instead of re-adopting.
        let verify = release_event(
            "t0",
            6,
            &SanitizedRelease::new(vec![
                entry("ab", 27, 24),
                entry("b", 27, 26),
                entry("a", 30, 27),
            ]),
        );
        sub.observe(&verify).unwrap();
        assert_eq!(sub.verified, 1);
        assert_eq!(sub.snapshots, 1);
    }

    #[test]
    fn stale_base_deltas_are_skipped() {
        let mut sub = SubscriberState::new();
        sub.observe(&release_event(
            "t0",
            8,
            &SanitizedRelease::new(vec![entry("a", 30, 27)]),
        ))
        .unwrap();
        let stale = release_delta_event(
            "t0",
            6,
            4,
            &ReleaseDelta {
                removed: vec![ItemsetId::intern(&"a".parse::<ItemSet>().unwrap())],
                ..ReleaseDelta::default()
            },
        );
        sub.observe(&stale).unwrap();
        assert_eq!(sub.deltas_skipped, 1);
        assert_eq!(sub.stream_len(), Some(8));
        assert_eq!(sub.entries().get(&ids("a")), Some(&27));
    }

    #[test]
    fn diverging_snapshot_is_an_error() {
        let mut sub = SubscriberState::new();
        sub.observe(&release_event(
            "t0",
            5,
            &SanitizedRelease::new(vec![entry("a", 30, 27)]),
        ))
        .unwrap();
        let wrong = release_event("t0", 5, &SanitizedRelease::new(vec![entry("a", 30, 20)]));
        assert!(sub.observe(&wrong).is_err());
    }
}
