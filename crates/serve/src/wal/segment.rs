//! Segment files: the unit of rotation and compaction.
//!
//! Each shard owns `wal_dir/shard-<idx>/`, holding `seg-<NNNNNN>.wal` files
//! with monotonically increasing indices. Records append to the
//! highest-indexed segment; rotation cuts a new one; compaction deletes
//! whole old segments once every live stream has a snapshot in a newer one
//! (see [`super::writer`]). Nothing is ever rewritten in place — a segment
//! is append-only while live and immutable once rotated, which is what
//! makes concurrent catch-up reads safe without locks.

use bfly_common::{Error, Result};
use std::path::{Path, PathBuf};

const SEG_PREFIX: &str = "seg-";
const SEG_SUFFIX: &str = ".wal";

/// The shard's log directory under the WAL root.
pub fn shard_dir(root: &Path, shard: usize) -> PathBuf {
    root.join(format!("shard-{shard}"))
}

/// File name of segment `idx` (zero-padded so lexical order is index order).
pub fn segment_file_name(idx: u64) -> String {
    format!("{SEG_PREFIX}{idx:06}{SEG_SUFFIX}")
}

/// Parse a segment index back out of a file name; `None` for foreign files
/// (editor droppings, temp files), which listing ignores.
pub fn parse_segment_idx(name: &str) -> Option<u64> {
    name.strip_prefix(SEG_PREFIX)?
        .strip_suffix(SEG_SUFFIX)?
        .parse()
        .ok()
}

/// List a shard's segments, sorted by index ascending. A missing directory
/// is an empty log, not an error (first boot).
pub fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut segs = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(segs),
        Err(e) => return Err(Error::Io(e)),
    };
    for entry in entries {
        let entry = entry.map_err(Error::Io)?;
        if let Some(idx) = entry.file_name().to_str().and_then(parse_segment_idx) {
            segs.push((idx, entry.path()));
        }
    }
    segs.sort_unstable_by_key(|&(idx, _)| idx);
    Ok(segs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_and_sort_lexically() {
        assert_eq!(segment_file_name(0), "seg-000000.wal");
        assert_eq!(segment_file_name(42), "seg-000042.wal");
        assert_eq!(parse_segment_idx("seg-000042.wal"), Some(42));
        assert_eq!(parse_segment_idx("seg-junk.wal"), None);
        assert_eq!(parse_segment_idx("other.txt"), None);
        assert!(segment_file_name(9) < segment_file_name(10));
    }

    #[test]
    fn listing_ignores_foreign_files_and_sorts() {
        let dir = std::env::temp_dir().join(format!("bfly-wal-seg-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for name in ["seg-000002.wal", "seg-000000.wal", "notes.txt"] {
            std::fs::write(dir.join(name), b"").unwrap();
        }
        let segs = list_segments(&dir).unwrap();
        assert_eq!(segs.iter().map(|s| s.0).collect::<Vec<_>>(), vec![0, 2]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_is_an_empty_log() {
        let dir = std::env::temp_dir().join("bfly-wal-definitely-missing-dir");
        assert!(list_segments(&dir).unwrap().is_empty());
    }
}
