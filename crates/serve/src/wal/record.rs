//! The WAL record format: a checksummed, sequence-numbered superset of the
//! wire protocol's binary frames.
//!
//! ```text
//! 0xBF | op:u8 | payload_len:u32 | seq:u64 | crc32:u32 | payload
//! ```
//!
//! All integers little-endian. `seq` increments by exactly one per record
//! across the whole shard log (spanning segment files), so replay can tell a
//! compacted prefix (the first retained record carries whatever sequence it
//! was written with) from a corrupted middle (a gap). The CRC-32 (IEEE,
//! [`bfly_common::crc32`]) covers the header bytes before the checksum field
//! plus the payload, so a flipped bit anywhere in the record fails closed.
//!
//! Two of the ops carry wire frames: a `release` (0x02) payload is exactly
//! a [`BinaryFrame::encode_payload`] body, which is what lets log-based
//! subscriber catch-up re-emit logged releases byte-identically without
//! re-running any pipeline; an `ingest` (0x01) payload is a `base:u64` —
//! the stream position *before* the chunk's first record — followed by the
//! exact wire ingest payload. The base is what lets replay place a chunk
//! absolutely: the worker logs a whole chunk before advancing it while
//! publications land mid-chunk, so replay buffers logged records and drains
//! them to each release's position, and a retained chunk from a compacted
//! prefix must know which of its records a later snapshot already covers.
//! The two WAL-only ops use the high bit-range so a WAL record can never be
//! confused for a wire frame op:
//!
//! ```text
//! op 0x10 open:     key, kind            (a stream key materialized)
//! op 0x11 snapshot: key, kind, stream_len:u64, published:u64, last_len:u64,
//!                   prev:u32 × (itemset, true:u64, sanitized:i64),
//!                   window:u32 × itemset
//! ```
//!
//! A `snapshot` carries everything replay needs to rebuild a stream without
//! older records: the window contents (tids are implied — the window's
//! records are stream positions `stream_len - count + 1 ..= stream_len`)
//! and the previous release's `(true_support, sanitized)` pairs, because
//! Butterfly's republication rule pins unchanged supports to sanitized
//! values that may chain back arbitrarily far — a fresh publish could not
//! regenerate them (see [`bfly_core::defense::PrivacyDefense::restore`]).

use bfly_common::crc32::Crc32;
use bfly_common::{BinaryEntry, BinaryFrame, Error, ItemSet, Result};
use bfly_core::defense::DefenseKind;

/// First byte of every record (shared with the wire's binary frames).
pub const WAL_MAGIC: u8 = 0xBF;

/// `magic + op + payload_len + seq + crc` — the fixed record prefix.
pub const HEADER_LEN: usize = 18;

/// Offset of the checksum field inside the header (everything before it is
/// covered by the checksum; everything after it is payload, also covered).
const CRC_OFFSET: usize = 14;

pub const OP_INGEST: u8 = 0x01;
pub const OP_RELEASE: u8 = 0x02;
pub const OP_OPEN: u8 = 0x10;
pub const OP_SNAPSHOT: u8 = 0x11;

/// One entry of a snapshot's previous release: the full
/// `(itemset, true_support, sanitized)` triple, not just the wire pair,
/// because restoring the republication pin map needs true supports.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotEntry {
    /// Item ids, ascending.
    pub ids: Vec<u32>,
    /// Exact support at the pinned publication.
    pub true_support: u64,
    /// The sanitized value the pin republishes.
    pub sanitized: i64,
}

/// The per-stream state a `snapshot` record captures — enough to rebuild
/// the pipeline without any earlier record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamSnapshot {
    /// Stream key.
    pub stream: String,
    /// The defense this key is bound to.
    pub kind: DefenseKind,
    /// Stream position `N` at the snapshot (always a publication point).
    pub stream_len: u64,
    /// Publications made so far (including the one at `stream_len`).
    pub published: u64,
    /// Stream position of the latest publication (`== stream_len`; kept
    /// explicit so the record is self-describing).
    pub last_len: u64,
    /// The latest release's entries (the delta base and pin map).
    pub prev_release: Vec<SnapshotEntry>,
    /// Window contents, oldest first; tids implied from `stream_len`.
    pub window: Vec<Vec<u32>>,
}

/// A decoded WAL record.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// A chunk of transactions accepted for one stream (logged before the
    /// pipeline advances).
    Ingest {
        /// Stream key.
        stream: String,
        /// Stream position before the chunk's first record: record `i` of
        /// the batch sits at absolute position `base + 1 + i`.
        base: u64,
        /// Transactions in arrival order.
        batch: Vec<ItemSet>,
    },
    /// A sanitized publication (logged before fan-out). Replay re-runs the
    /// pipeline at this point and requires bit-identical output.
    Release {
        /// Stream key.
        stream: String,
        /// Stream position of the publication.
        stream_len: u64,
        /// Sanitized entries in canonical release order.
        entries: Vec<BinaryEntry>,
    },
    /// A stream key materialized with a defense binding.
    Open {
        /// Stream key.
        stream: String,
        /// The defense the key bound to.
        kind: DefenseKind,
    },
    /// A full per-stream state snapshot (compaction barrier).
    Snapshot(StreamSnapshot),
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize, "string too long for the log");
    buf.extend_from_slice(&(s.len() as u16).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn put_ids(buf: &mut Vec<u8>, ids: &[u32]) {
    debug_assert!(ids.len() <= u16::MAX as usize, "itemset too wide");
    buf.extend_from_slice(&(ids.len() as u16).to_le_bytes());
    for id in ids {
        buf.extend_from_slice(&id.to_le_bytes());
    }
}

/// Bounds-checked reader over one payload; malformed bytes surface as
/// parse errors, never panics (the log may be torn or bit-flipped).
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| Error::Parse("wal record truncated inside payload".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String> {
        let len = self.u16()? as usize;
        std::str::from_utf8(self.take(len)?)
            .map(str::to_string)
            .map_err(|_| Error::Parse("wal record string is not utf-8".into()))
    }

    fn ids(&mut self) -> Result<Vec<u32>> {
        let n = self.u16()? as usize;
        let mut ids = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            ids.push(self.u32()?);
        }
        Ok(ids)
    }

    fn kind(&mut self) -> Result<DefenseKind> {
        let name = self.str()?;
        DefenseKind::from_name(&name)
            .ok_or_else(|| Error::Parse(format!("wal record names unknown defense {name:?}")))
    }

    fn finish(self) -> Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "wal record has {} trailing payload bytes",
                self.buf.len() - self.pos
            )))
        }
    }
}

impl WalRecord {
    /// Encode as one log record carrying sequence number `seq`.
    pub fn encode(&self, seq: u64) -> Vec<u8> {
        let (op, payload) = self.encode_payload();
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.push(WAL_MAGIC);
        out.push(op);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&seq.to_le_bytes());
        let mut crc = Crc32::new();
        crc.update(&out);
        crc.update(&payload);
        out.extend_from_slice(&crc.finish().to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    fn encode_payload(&self) -> (u8, Vec<u8>) {
        match self {
            // The wire-frame ops delegate to the frame codec so the logged
            // bytes are exactly what catch-up re-emits; ingest prefixes the
            // frame payload with the chunk's absolute stream position.
            WalRecord::Ingest {
                stream,
                base,
                batch,
            } => {
                let (_, frame) = BinaryFrame::Ingest {
                    stream: stream.clone(),
                    batch: batch.clone(),
                }
                .encode_payload();
                let mut p = Vec::with_capacity(8 + frame.len());
                p.extend_from_slice(&base.to_le_bytes());
                p.extend_from_slice(&frame);
                (OP_INGEST, p)
            }
            WalRecord::Release {
                stream,
                stream_len,
                entries,
            } => BinaryFrame::Release {
                stream: stream.clone(),
                stream_len: *stream_len,
                entries: entries.clone(),
            }
            .encode_payload(),
            WalRecord::Open { stream, kind } => {
                let mut p = Vec::with_capacity(32);
                put_str(&mut p, stream);
                put_str(&mut p, kind.name());
                (OP_OPEN, p)
            }
            WalRecord::Snapshot(s) => {
                let mut p = Vec::with_capacity(256);
                put_str(&mut p, &s.stream);
                put_str(&mut p, s.kind.name());
                p.extend_from_slice(&s.stream_len.to_le_bytes());
                p.extend_from_slice(&s.published.to_le_bytes());
                p.extend_from_slice(&s.last_len.to_le_bytes());
                p.extend_from_slice(&(s.prev_release.len() as u32).to_le_bytes());
                for e in &s.prev_release {
                    put_ids(&mut p, &e.ids);
                    p.extend_from_slice(&e.true_support.to_le_bytes());
                    p.extend_from_slice(&e.sanitized.to_le_bytes());
                }
                p.extend_from_slice(&(s.window.len() as u32).to_le_bytes());
                for ids in &s.window {
                    put_ids(&mut p, ids);
                }
                (OP_SNAPSHOT, p)
            }
        }
    }

    fn decode_payload(op: u8, payload: &[u8]) -> Result<WalRecord> {
        match op {
            OP_INGEST => {
                if payload.len() < 8 {
                    return Err(Error::Parse(
                        "wal ingest record shorter than its base position".into(),
                    ));
                }
                let base = u64::from_le_bytes(payload[..8].try_into().unwrap());
                match BinaryFrame::decode_payload(op, &payload[8..])? {
                    BinaryFrame::Ingest { stream, batch } => Ok(WalRecord::Ingest {
                        stream,
                        base,
                        batch,
                    }),
                    other => Err(Error::Parse(format!(
                        "wal ingest op decoded to unexpected {other:?}"
                    ))),
                }
            }
            OP_RELEASE => match BinaryFrame::decode_payload(op, payload)? {
                BinaryFrame::Release {
                    stream,
                    stream_len,
                    entries,
                } => Ok(WalRecord::Release {
                    stream,
                    stream_len,
                    entries,
                }),
                other => Err(Error::Parse(format!(
                    "wal frame op decoded to unexpected {other:?}"
                ))),
            },
            OP_OPEN => {
                let mut c = Cursor {
                    buf: payload,
                    pos: 0,
                };
                let stream = c.str()?;
                let kind = c.kind()?;
                c.finish()?;
                Ok(WalRecord::Open { stream, kind })
            }
            OP_SNAPSHOT => {
                let mut c = Cursor {
                    buf: payload,
                    pos: 0,
                };
                let stream = c.str()?;
                let kind = c.kind()?;
                let stream_len = c.u64()?;
                let published = c.u64()?;
                let last_len = c.u64()?;
                let np = c.u32()? as usize;
                let mut prev_release = Vec::with_capacity(np.min(4096));
                for _ in 0..np {
                    let ids = c.ids()?;
                    let true_support = c.u64()?;
                    let sanitized = c.i64()?;
                    prev_release.push(SnapshotEntry {
                        ids,
                        true_support,
                        sanitized,
                    });
                }
                let nw = c.u32()? as usize;
                let mut window = Vec::with_capacity(nw.min(65_536));
                for _ in 0..nw {
                    window.push(c.ids()?);
                }
                c.finish()?;
                Ok(WalRecord::Snapshot(StreamSnapshot {
                    stream,
                    kind,
                    stream_len,
                    published,
                    last_len,
                    prev_release,
                    window,
                }))
            }
            other => Err(Error::Parse(format!("unknown wal op 0x{other:02x}"))),
        }
    }

    /// The stream key the record belongs to.
    pub fn stream(&self) -> &str {
        match self {
            WalRecord::Ingest { stream, .. }
            | WalRecord::Release { stream, .. }
            | WalRecord::Open { stream, .. } => stream,
            WalRecord::Snapshot(s) => &s.stream,
        }
    }
}

/// Outcome of scanning one record at an offset of a segment buffer.
#[derive(Debug)]
pub enum Scan {
    /// A structurally valid, checksum-clean record ending at `end`.
    Record {
        /// The decoded record.
        rec: WalRecord,
        /// Its sequence number.
        seq: u64,
        /// Offset one past the record (the next scan position).
        end: usize,
    },
    /// Clean end of the segment (offset exactly at the buffer end).
    End,
    /// Bytes at the offset are not a valid record. At the tail of the last
    /// segment this is a torn write (truncate and continue); anywhere else
    /// it is corruption (refuse to start).
    Corrupt {
        /// What failed, for the error message.
        reason: String,
    },
}

/// Scan the record starting at `pos` in a segment buffer.
pub fn scan_one(buf: &[u8], pos: usize) -> Scan {
    if pos == buf.len() {
        return Scan::End;
    }
    if buf.len() - pos < HEADER_LEN {
        return Scan::Corrupt {
            reason: format!("{} trailing bytes, shorter than a header", buf.len() - pos),
        };
    }
    let h = &buf[pos..pos + HEADER_LEN];
    if h[0] != WAL_MAGIC {
        return Scan::Corrupt {
            reason: format!("bad magic 0x{:02x}", h[0]),
        };
    }
    let op = h[1];
    let payload_len = u32::from_le_bytes(h[2..6].try_into().unwrap()) as usize;
    let seq = u64::from_le_bytes(h[6..14].try_into().unwrap());
    let stored_crc = u32::from_le_bytes(h[CRC_OFFSET..HEADER_LEN].try_into().unwrap());
    let Some(end) = pos
        .checked_add(HEADER_LEN)
        .and_then(|p| p.checked_add(payload_len))
        .filter(|&e| e <= buf.len())
    else {
        return Scan::Corrupt {
            reason: format!("payload of {payload_len} bytes runs past the segment"),
        };
    };
    let payload = &buf[pos + HEADER_LEN..end];
    let mut crc = Crc32::new();
    crc.update(&buf[pos..pos + CRC_OFFSET]);
    crc.update(payload);
    if crc.finish() != stored_crc {
        return Scan::Corrupt {
            reason: format!(
                "checksum mismatch at seq {seq} (stored {stored_crc:#010x}, computed {:#010x})",
                crc.finish()
            ),
        };
    }
    match WalRecord::decode_payload(op, payload) {
        Ok(rec) => Scan::Record { rec, seq, end },
        Err(e) => Scan::Corrupt {
            reason: format!("checksum-clean record failed to decode: {e}"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iset(s: &str) -> ItemSet {
        s.parse().unwrap()
    }

    fn samples() -> Vec<WalRecord> {
        vec![
            WalRecord::Open {
                stream: "tenant-a".into(),
                kind: DefenseKind::Butterfly,
            },
            WalRecord::Ingest {
                stream: "tenant-a".into(),
                base: 12_345,
                batch: vec![iset("ab"), iset("c"), ItemSet::from_ids([])],
            },
            WalRecord::Release {
                stream: "tenant-a".into(),
                stream_len: 1 << 33,
                entries: vec![
                    BinaryEntry {
                        ids: vec![1, 2],
                        support: -4,
                    },
                    BinaryEntry {
                        ids: vec![9],
                        support: i64::MAX,
                    },
                ],
            },
            WalRecord::Snapshot(StreamSnapshot {
                stream: "tenant-b".into(),
                kind: DefenseKind::PrivBasis,
                stream_len: 200,
                published: 12,
                last_len: 200,
                prev_release: vec![SnapshotEntry {
                    ids: vec![3, 5],
                    true_support: 40,
                    sanitized: 38,
                }],
                window: vec![vec![1], vec![], vec![2, 7]],
            }),
        ]
    }

    #[test]
    fn records_round_trip_with_sequence_numbers() {
        let mut buf = Vec::new();
        for (i, rec) in samples().iter().enumerate() {
            buf.extend_from_slice(&rec.encode(100 + i as u64));
        }
        let mut pos = 0;
        for (i, want) in samples().iter().enumerate() {
            match scan_one(&buf, pos) {
                Scan::Record { rec, seq, end } => {
                    assert_eq!(&rec, want);
                    assert_eq!(seq, 100 + i as u64);
                    pos = end;
                }
                other => panic!("record {i}: {other:?}"),
            }
        }
        assert!(matches!(scan_one(&buf, pos), Scan::End));
    }

    #[test]
    fn every_single_bit_flip_is_caught() {
        let rec = &samples()[2];
        let clean = rec.encode(7);
        for byte in 0..clean.len() {
            let mut bytes = clean.clone();
            bytes[byte] ^= 1;
            match scan_one(&bytes, 0) {
                Scan::Corrupt { .. } => {}
                // A flip in the length field can also make the header
                // promise more payload than the buffer holds — still caught,
                // still corrupt. Anything that *decodes* is a failure.
                Scan::Record { .. } => panic!("flip at byte {byte} went undetected"),
                Scan::End => panic!("flip at byte {byte} scanned as clean end"),
            }
        }
    }

    #[test]
    fn truncated_tail_is_corrupt_at_every_cut() {
        let rec = &samples()[3];
        let clean = rec.encode(3);
        for cut in 1..clean.len() {
            match scan_one(&clean[..cut], 0) {
                Scan::Corrupt { .. } => {}
                other => panic!("cut at {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn ingest_and_release_payloads_carry_wire_frame_payloads() {
        // The contract catch-up relies on: a logged release's payload is the
        // exact frame payload, so re-framing it reproduces the wire bytes.
        let rec = WalRecord::Release {
            stream: "s".into(),
            stream_len: 42,
            entries: vec![BinaryEntry {
                ids: vec![1],
                support: 9,
            }],
        };
        let (op, payload) = rec.encode_payload();
        let frame = BinaryFrame::Release {
            stream: "s".into(),
            stream_len: 42,
            entries: vec![BinaryEntry {
                ids: vec![1],
                support: 9,
            }],
        };
        assert_eq!((op, payload), frame.encode_payload());

        // An ingest payload is its wire frame payload behind an 8-byte
        // absolute stream position.
        let rec = WalRecord::Ingest {
            stream: "s".into(),
            base: 7,
            batch: vec![iset("ab")],
        };
        let (op, payload) = rec.encode_payload();
        let (frame_op, frame_payload) = BinaryFrame::Ingest {
            stream: "s".into(),
            batch: vec![iset("ab")],
        }
        .encode_payload();
        assert_eq!(op, frame_op);
        assert_eq!(&payload[..8], &7u64.to_le_bytes());
        assert_eq!(&payload[8..], &frame_payload[..]);
    }

    #[test]
    fn unknown_defense_name_is_corrupt_not_panic() {
        let rec = WalRecord::Open {
            stream: "s".into(),
            kind: DefenseKind::Suppression,
        };
        let mut bytes = rec.encode(0);
        // Rewrite "suppress" to an unknown name of equal length, fixing the
        // checksum so only semantic validation can object.
        let start = bytes.len() - "suppress".len();
        bytes[start..].copy_from_slice(b"suppr3ss");
        let mut crc = Crc32::new();
        crc.update(&bytes[..CRC_OFFSET]);
        crc.update(&bytes[HEADER_LEN..]);
        let fixed = crc.finish().to_le_bytes();
        bytes[CRC_OFFSET..HEADER_LEN].copy_from_slice(&fixed);
        match scan_one(&bytes, 0) {
            Scan::Corrupt { reason } => assert!(reason.contains("unknown defense"), "{reason}"),
            other => panic!("{other:?}"),
        }
    }
}
