//! The per-shard append path: one [`WalWriter`] owned by one shard worker
//! thread (no locking — the shard's single-threaded event order *is* the
//! log order).
//!
//! **Durability** is governed by [`WalSyncPolicy`]: every record is handed
//! to the OS with one `write` call (so concurrent catch-up readers only
//! ever observe whole records or a clean tail), and `fsync` runs per the
//! policy — after every record, every `n` records, or never.
//!
//! **Rotation** is keyed to snapshots: a segment is cut once it has
//! absorbed `snapshot_every` snapshot records *and* reached the configured
//! byte floor (tiny segments are all file-system overhead), or
//! unconditionally at the byte ceiling. Because rotation only happens after
//! snapshots, every rotated-away segment chain is eventually *covered*: all
//! state it describes is reconstructible from snapshots in newer segments.
//!
//! **Compaction** exploits that: after each rotation, the writer computes
//! the coverage floor — for every live stream, the oldest segment still
//! needed to rebuild it (its latest snapshot's segment, or its `open`
//! segment if it has never snapshotted) — and deletes segments strictly
//! below the floor, minus a `keep_segments` grace tail retained as
//! catch-up horizon for late subscribers.

use crate::config::{WalConfig, WalSyncPolicy};
use crate::stats::WalStats;
use crate::wal::record::WalRecord;
use crate::wal::segment::{segment_file_name, shard_dir};
use bfly_common::Result;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Where the log picks up writing after replay — everything the writer
/// cannot rediscover cheaply on its own.
#[derive(Debug, Default)]
pub struct WriterPosition {
    /// Highest segment index on disk (the append target).
    pub seg_idx: u64,
    /// Bytes already in that segment (after any tail truncation).
    pub seg_bytes: u64,
    /// Snapshot records already in that segment.
    pub seg_snapshots: u32,
    /// Sequence number the next record must carry.
    pub next_seq: u64,
    /// Per-stream coverage: the oldest segment index still needed to
    /// rebuild each live stream.
    pub coverage: HashMap<String, u64>,
    /// Per-stream segment of the last `ingest` record — the coverage
    /// anchor for the next snapshot (see [`WalWriter::append`]).
    pub ingest_segs: HashMap<String, u64>,
    /// Total segments on disk (feeds the `segments` gauge).
    pub segments_on_disk: u64,
}

/// Append half of one shard's write-ahead log.
#[derive(Debug)]
pub struct WalWriter {
    dir: PathBuf,
    cfg: WalConfig,
    /// Snapshot records per segment before rotation fires.
    rotate_snapshots: u32,
    stats: Arc<WalStats>,
    file: File,
    seg_idx: u64,
    seg_bytes: u64,
    seg_snapshots: u32,
    next_seq: u64,
    appends_since_sync: u32,
    coverage: HashMap<String, u64>,
    ingest_segs: HashMap<String, u64>,
}

impl WalWriter {
    /// Open the shard's log for appending at `pos` (a fresh log passes
    /// `WriterPosition::default()` — segment 0, sequence 0). Creates the
    /// shard directory and the append segment if missing.
    pub fn open(
        root: &Path,
        shard: usize,
        cfg: WalConfig,
        snapshot_every: usize,
        stats: Arc<WalStats>,
        pos: WriterPosition,
    ) -> Result<WalWriter> {
        let dir = shard_dir(root, shard);
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(segment_file_name(pos.seg_idx));
        let existed = path.exists();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        if !existed {
            stats.segments.fetch_add(1, Ordering::Relaxed);
        } else {
            // Replay counted segments_on_disk; make the gauge match it once.
            let on_disk = pos.segments_on_disk;
            let gauge = stats.segments.load(Ordering::Relaxed);
            if gauge < on_disk {
                stats.segments.fetch_add(on_disk - gauge, Ordering::Relaxed);
            }
        }
        Ok(WalWriter {
            dir,
            cfg,
            rotate_snapshots: snapshot_every.max(1) as u32,
            stats,
            file,
            seg_idx: pos.seg_idx,
            seg_bytes: pos.seg_bytes,
            seg_snapshots: pos.seg_snapshots,
            next_seq: pos.next_seq,
            appends_since_sync: 0,
            coverage: pos.coverage,
            ingest_segs: pos.ingest_segs,
        })
    }

    /// Append one record, then run the sync policy and (maybe) rotation.
    /// Durable-before-visible is the caller's contract: the shard worker
    /// appends the `release` record *before* fanning the release out to
    /// subscribers, and the `ingest` record before advancing the pipeline.
    pub fn append(&mut self, rec: &WalRecord) -> Result<()> {
        let bytes = rec.encode(self.next_seq);
        self.file.write_all(&bytes)?;
        self.next_seq += 1;
        self.seg_bytes += bytes.len() as u64;
        self.stats
            .bytes_appended
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        self.stats.records_appended.fetch_add(1, Ordering::Relaxed);
        match rec {
            WalRecord::Open { stream, .. } => {
                // Birth segment is the coverage anchor until a snapshot
                // supersedes it.
                self.coverage.entry(stream.clone()).or_insert(self.seg_idx);
            }
            WalRecord::Ingest { stream, .. } => {
                self.ingest_segs.insert(stream.clone(), self.seg_idx);
            }
            WalRecord::Snapshot(s) => {
                // A snapshot's basis is not just itself: the worker logs a
                // whole chunk before advancing it, so when the snapshot
                // lands mid-chunk, the chunk's post-snapshot tail records
                // live in the *chunk's* segment — which a byte-ceiling
                // rotation may have sealed before this snapshot. Anchor
                // coverage there, never past it, or compaction could eat
                // records replay still needs.
                let anchor = self
                    .ingest_segs
                    .get(&s.stream)
                    .copied()
                    .unwrap_or(self.seg_idx);
                self.coverage.insert(s.stream.clone(), anchor);
                self.seg_snapshots += 1;
            }
            _ => {}
        }
        match self.cfg.sync {
            WalSyncPolicy::Always => self.fsync()?,
            WalSyncPolicy::Interval(n) => {
                self.appends_since_sync += 1;
                if self.appends_since_sync >= n {
                    self.fsync()?;
                }
            }
            WalSyncPolicy::Never => {}
        }
        let snapshots_ready = self.seg_snapshots >= self.rotate_snapshots
            && self.seg_bytes >= self.cfg.segment_min_bytes;
        let over_ceiling =
            self.cfg.segment_max_bytes > 0 && self.seg_bytes >= self.cfg.segment_max_bytes;
        if snapshots_ready || over_ceiling {
            self.rotate()?;
        }
        Ok(())
    }

    /// Force everything buffered to stable storage (shutdown/drain hook;
    /// also the rotation barrier — a segment is finalized durable).
    pub fn sync(&mut self) -> Result<()> {
        self.fsync()
    }

    fn fsync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        self.appends_since_sync = 0;
        self.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn rotate(&mut self) -> Result<()> {
        // Finalize the old segment durably before the new one exists, so a
        // crash between the two never leaves a later segment preceding an
        // unsynced earlier one.
        self.fsync()?;
        self.seg_idx += 1;
        let path = self.dir.join(segment_file_name(self.seg_idx));
        self.file = OpenOptions::new().create(true).append(true).open(&path)?;
        self.seg_bytes = 0;
        self.seg_snapshots = 0;
        self.stats.segments.fetch_add(1, Ordering::Relaxed);
        self.compact()
    }

    /// Delete segments below the coverage floor, keeping `keep_segments`
    /// of grace below it as catch-up horizon. A stream that has never
    /// snapshotted pins the floor at its `open` segment, so its full
    /// history survives.
    fn compact(&mut self) -> Result<()> {
        let Some(&floor) = self.coverage.values().min() else {
            return Ok(()); // no live streams: nothing is safe to judge
        };
        let delete_below = floor.saturating_sub(self.cfg.keep_segments as u64);
        if delete_below == 0 {
            return Ok(());
        }
        for (idx, path) in crate::wal::segment::list_segments(&self.dir)? {
            if idx >= delete_below {
                break; // sorted ascending: nothing further qualifies
            }
            std::fs::remove_file(&path)?;
            self.stats.segments.fetch_sub(1, Ordering::Relaxed);
            self.stats
                .segments_compacted
                .fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Drop a closed stream from coverage so it stops pinning compaction.
    pub fn forget_stream(&mut self, stream: &str) {
        self.coverage.remove(stream);
        self.ingest_segs.remove(stream);
    }

    /// The sequence number the next append will carry (test hook).
    #[cfg(test)]
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::record::{scan_one, Scan, SnapshotEntry, StreamSnapshot};
    use crate::wal::segment::list_segments;
    use bfly_core::defense::DefenseKind;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "bfly-wal-writer-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn snap(stream: &str, n: u64) -> WalRecord {
        WalRecord::Snapshot(StreamSnapshot {
            stream: stream.into(),
            kind: DefenseKind::Butterfly,
            stream_len: n,
            published: 1,
            last_len: n,
            prev_release: vec![SnapshotEntry {
                ids: vec![1],
                true_support: 5,
                sanitized: 5,
            }],
            window: vec![vec![1]; 4],
        })
    }

    fn ingest(stream: &str) -> WalRecord {
        WalRecord::Ingest {
            stream: stream.into(),
            base: 0,
            batch: vec!["ab".parse().unwrap()],
        }
    }

    fn tiny_cfg(root: &Path) -> WalConfig {
        let mut cfg = WalConfig::new(root);
        cfg.segment_min_bytes = 1; // rotate on every snapshot
        cfg.keep_segments = 0; // no grace: compaction is observable fast
        cfg
    }

    #[test]
    fn appends_are_scannable_with_increasing_seqs() {
        let root = tmp_root("scan");
        let stats = Arc::new(WalStats::default());
        let mut w = WalWriter::open(
            &root,
            0,
            WalConfig::new(&root),
            4,
            stats.clone(),
            WriterPosition::default(),
        )
        .unwrap();
        w.append(&WalRecord::Open {
            stream: "s".into(),
            kind: DefenseKind::Butterfly,
        })
        .unwrap();
        w.append(&ingest("s")).unwrap();
        w.append(&ingest("s")).unwrap();
        assert_eq!(w.next_seq(), 3);
        let buf = std::fs::read(shard_dir(&root, 0).join(segment_file_name(0))).unwrap();
        let mut pos = 0;
        for want_seq in 0..3 {
            match scan_one(&buf, pos) {
                Scan::Record { seq, end, .. } => {
                    assert_eq!(seq, want_seq);
                    pos = end;
                }
                other => panic!("{other:?}"),
            }
        }
        assert!(matches!(scan_one(&buf, pos), Scan::End));
        assert_eq!(stats.records_appended.load(Ordering::Relaxed), 3);
        assert_eq!(
            stats.bytes_appended.load(Ordering::Relaxed),
            buf.len() as u64
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn sync_policies_fsync_when_promised() {
        for (policy, records, want_fsyncs) in [
            (WalSyncPolicy::Always, 3u32, 3u64),
            (WalSyncPolicy::Interval(2), 5, 2),
            (WalSyncPolicy::Never, 4, 0),
        ] {
            let root = tmp_root(&format!("sync-{policy}"));
            let mut cfg = WalConfig::new(&root);
            cfg.sync = policy;
            let stats = Arc::new(WalStats::default());
            let mut w = WalWriter::open(&root, 0, cfg, 4, stats.clone(), WriterPosition::default())
                .unwrap();
            for _ in 0..records {
                w.append(&ingest("s")).unwrap();
            }
            assert_eq!(
                stats.fsyncs.load(Ordering::Relaxed),
                want_fsyncs,
                "policy {policy}"
            );
            std::fs::remove_dir_all(&root).unwrap();
        }
    }

    #[test]
    fn rotation_cuts_on_snapshots_and_compaction_respects_coverage() {
        let root = tmp_root("rotate");
        let stats = Arc::new(WalStats::default());
        let mut w = WalWriter::open(
            &root,
            0,
            tiny_cfg(&root),
            1,
            stats.clone(),
            WriterPosition::default(),
        )
        .unwrap();
        w.append(&WalRecord::Open {
            stream: "s".into(),
            kind: DefenseKind::Butterfly,
        })
        .unwrap();
        // Each snapshot rotates; each rotation may compact everything below
        // the latest snapshot's segment.
        for round in 0u64..3 {
            w.append(&ingest("s")).unwrap();
            w.append(&snap("s", 4 + round)).unwrap();
        }
        let segs = list_segments(&shard_dir(&root, 0)).unwrap();
        let idxs: Vec<u64> = segs.iter().map(|s| s.0).collect();
        // Snapshot in seg 2 covers stream s; segs 0 and 1 are compacted.
        assert_eq!(idxs, vec![2, 3], "live segments: {idxs:?}");
        assert_eq!(stats.segments_compacted.load(Ordering::Relaxed), 2);
        assert_eq!(stats.segments.load(Ordering::Relaxed), 2);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn unsnapshotted_stream_pins_compaction() {
        let root = tmp_root("pin");
        let stats = Arc::new(WalStats::default());
        let mut w = WalWriter::open(
            &root,
            0,
            tiny_cfg(&root),
            1,
            stats.clone(),
            WriterPosition::default(),
        )
        .unwrap();
        // Stream "old" opens in segment 0 and never snapshots: its history
        // must survive any amount of snapshotting by "hot".
        w.append(&WalRecord::Open {
            stream: "old".into(),
            kind: DefenseKind::Butterfly,
        })
        .unwrap();
        w.append(&WalRecord::Open {
            stream: "hot".into(),
            kind: DefenseKind::Butterfly,
        })
        .unwrap();
        for round in 0u64..4 {
            w.append(&snap("hot", 4 + round)).unwrap();
        }
        let segs = list_segments(&shard_dir(&root, 0)).unwrap();
        assert_eq!(segs[0].0, 0, "segment 0 must survive while old is live");
        assert_eq!(stats.segments_compacted.load(Ordering::Relaxed), 0);
        // Once "old" closes, compaction may advance to hot's coverage.
        w.forget_stream("old");
        w.append(&snap("hot", 9)).unwrap();
        let segs = list_segments(&shard_dir(&root, 0)).unwrap();
        assert!(segs[0].0 > 0, "segment 0 still live: {segs:?}");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn byte_ceiling_rotates_without_snapshots() {
        let root = tmp_root("ceiling");
        let mut cfg = WalConfig::new(&root);
        cfg.segment_min_bytes = 1;
        cfg.segment_max_bytes = 256;
        let stats = Arc::new(WalStats::default());
        let mut w = WalWriter::open(&root, 0, cfg, 4, stats, WriterPosition::default()).unwrap();
        for _ in 0..64 {
            w.append(&ingest("s")).unwrap();
        }
        let segs = list_segments(&shard_dir(&root, 0)).unwrap();
        assert!(segs.len() > 1, "ceiling never rotated: {segs:?}");
        std::fs::remove_dir_all(&root).unwrap();
    }
}
