//! Startup recovery: scan a shard's segments oldest-to-newest and rebuild
//! every stream's pipeline to bit-identical publisher state.
//!
//! The log *is* the publication schedule: replay re-executes it rather than
//! trusting it. The worker logs a whole `ingest` chunk *before* advancing
//! it while publications land mid-chunk, so the log runs ahead of the
//! pipeline: replay buffers each chunk's records (their absolute positions
//! come from the record's `base`) and a `release` record drains the buffer
//! up to its `stream_len`, publishes **now**, and verifies the recomputed
//! sanitized entries byte-equal the logged ones — seeded noise (the
//! publisher's per-key seed, PrivBasis's content-hash splits) makes that
//! exact, so any divergence means the log and the code disagree about
//! history and starting up would silently fork the stream. That is a hard
//! error, never a truncation.
//!
//! Records still buffered when the log ends are the crashed worker's last
//! strides: replay re-advances them with the worker's own cadence checks,
//! so a publication whose `release` record was torn off the tail is
//! re-executed — and re-logged, before the server accepts a single
//! connection — rather than silently skipped.
//!
//! Two ways a stream comes into being during replay:
//!
//! * an `open` record — the stream's birth survived compaction; replay
//!   builds a fresh pipeline and re-feeds everything;
//! * a `snapshot` record for an unknown stream — the birth was compacted;
//!   replay rebuilds from the snapshot alone: restart the stream counter
//!   at `stream_len - window_count`, re-feed the window contents, zero the
//!   cadence counter (the snapshot sits at a publication point), and
//!   reinstate the defense's cross-window state via
//!   [`bfly_core::defense::PrivacyDefense::restore`] — including the
//!   previous release's `(true_support, sanitized)` pairs, because
//!   Butterfly's republication rule pins unchanged supports to values a
//!   fresh publish could not regenerate.
//!
//! `release` records for *unknown* streams are skipped, not errors: they
//! are the compacted prefix — records older than the stream's adopted
//! snapshot that happen to share a retained segment with it. `ingest`
//! records for unknown streams are buffered like any other: adoption drops
//! the buffered records the snapshot already covers (position `<=` the
//! snapshot's `stream_len`) and keeps the tail, because a chunk logged
//! before the snapshot can carry records the snapshot does not cover.
//!
//! Corruption policy: an invalid record in the **last** segment is a torn
//! tail — the crash interrupted the final write — so replay truncates the
//! segment at the last clean record and continues. An invalid record
//! anywhere else means storage corrupted data that was once durable;
//! replay refuses to start rather than serve a forked history.

use crate::config::{ServeConfig, WalConfig};
use crate::protocol::binary_entry;
use crate::stats::WalStats;
use crate::wal::record::{scan_one, Scan, SnapshotEntry, StreamSnapshot, WalRecord};
use crate::wal::segment::{list_segments, shard_dir};
use crate::wal::writer::{WalWriter, WriterPosition};
use bfly_common::{BinaryEntry, Error, ItemSet, ItemsetId, Result, Transaction};
use bfly_core::defense::{DefenseKind, PrivacyDefense};
use bfly_core::{SanitizedItemset, SanitizedRelease, StreamPipeline};
use bfly_mining::MinerBackend;
use std::collections::{HashMap, VecDeque};
use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// The runtime-plumbed pipeline type the serve layer runs everywhere.
pub type DynPipeline = StreamPipeline<Box<dyn MinerBackend>, Box<dyn PrivacyDefense>>;

/// One stream's logged-but-not-yet-applied records, each at its absolute
/// stream position (record at position `p` brings `stream_len` to `p`).
/// The log runs ahead of the pipeline — a chunk is appended whole before
/// any of its records advance — so replay stages records here and drains
/// them as `release` records (or the end of the log) demand.
type Pending = VecDeque<(u64, ItemSet)>;

/// One stream rebuilt by replay, ready to drop into a shard worker.
pub struct RecoveredStream {
    /// The defense the stream was bound to.
    pub kind: DefenseKind,
    /// The pipeline, advanced to exactly the pre-crash stream position.
    pub pipe: DynPipeline,
    /// Publications made before the crash.
    pub published: u64,
    /// Stream position of the latest publication.
    pub last_len: u64,
}

/// Everything recovery hands the shard: its streams and a writer positioned
/// to append the next record.
pub struct RecoveredShard {
    /// Rebuilt streams by key.
    pub streams: HashMap<String, RecoveredStream>,
    /// The log, open for appending after the last clean record.
    pub writer: WalWriter,
    /// Publications re-verified during replay (also accumulated into
    /// [`WalStats::recovered_windows`]).
    pub recovered_windows: u64,
}

/// Capture one stream's state as a snapshot record — the worker calls this
/// right after a publication, so `release` is the stream's latest release
/// and the cadence counter is zero.
pub fn snapshot_of(
    stream: &str,
    kind: DefenseKind,
    pipe: &DynPipeline,
    published: u64,
    release: &SanitizedRelease,
) -> StreamSnapshot {
    let stream_len = pipe.stream_len();
    StreamSnapshot {
        stream: stream.to_string(),
        kind,
        stream_len,
        published,
        last_len: stream_len,
        prev_release: release
            .iter()
            .map(|e| SnapshotEntry {
                ids: e.itemset().items().iter().map(|i| i.id()).collect(),
                true_support: e.true_support,
                sanitized: e.sanitized,
            })
            .collect(),
        window: pipe
            .window()
            .records()
            .map(|t| t.items().items().iter().map(|i| i.id()).collect())
            .collect(),
    }
}

fn wire_entries(release: &SanitizedRelease) -> Vec<BinaryEntry> {
    release.iter().map(binary_entry).collect()
}

fn corrupt(path: &Path, reason: &str) -> Error {
    Error::Parse(format!(
        "wal segment {} is corrupt mid-log ({reason}); refusing to start on a forked history \
         (move the wal dir aside to start fresh)",
        path.display()
    ))
}

/// Replay one shard's log. See the module docs for the full contract.
///
/// # Errors
/// I/O failures, corruption outside the torn tail, or a recomputed release
/// diverging from the logged bytes.
pub fn recover_shard(
    cfg: &ServeConfig,
    wal: &WalConfig,
    shard: usize,
    stats: &Arc<WalStats>,
) -> Result<RecoveredShard> {
    let dir = shard_dir(&wal.dir, shard);
    let segs = list_segments(&dir)?;
    let mut state = ReplayState::default();
    let mut expected_seq: Option<u64> = None;
    let mut pos = WriterPosition {
        segments_on_disk: segs.len() as u64,
        ..WriterPosition::default()
    };

    for (nth, &(seg_idx, ref path)) in segs.iter().enumerate() {
        let buf = std::fs::read(path)?;
        let last_segment = nth == segs.len() - 1;
        let mut off = 0usize;
        let mut seg_snapshots = 0u32;
        loop {
            match scan_one(&buf, off) {
                Scan::End => break,
                Scan::Record { rec, seq, end } => {
                    if let Some(want) = expected_seq {
                        if seq != want {
                            // A sequence discontinuity between checksum-clean
                            // records: same policy as structural corruption.
                            let reason = format!("sequence gap: expected {want}, found {seq}");
                            if last_segment {
                                truncate_tail(path, off as u64, stats)?;
                                break;
                            }
                            return Err(corrupt(path, &reason));
                        }
                    }
                    expected_seq = Some(seq + 1);
                    if matches!(rec, WalRecord::Snapshot(_)) {
                        seg_snapshots += 1;
                    }
                    apply(cfg, rec, seg_idx, path, &mut state)?;
                    off = end;
                }
                Scan::Corrupt { reason } => {
                    if last_segment {
                        truncate_tail(path, off as u64, stats)?;
                        break;
                    }
                    return Err(corrupt(path, &reason));
                }
            }
        }
        if last_segment {
            pos.seg_idx = seg_idx;
            pos.seg_bytes = std::fs::metadata(path)?.len();
            pos.seg_snapshots = seg_snapshots;
        }
    }

    pos.next_seq = expected_seq.unwrap_or(0);
    pos.coverage = state.coverage;
    pos.ingest_segs = state.ingest_segs;
    let mut writer = WalWriter::open(
        &wal.dir,
        shard,
        wal.clone(),
        cfg.snapshot_every,
        stats.clone(),
        pos,
    )?;

    // Drain what the log accepted but no logged release consumed: the
    // crash landed after a chunk's append and before its next publication.
    // Re-advance with the worker's own cadence checks — a publication
    // whose release record was torn off the tail is re-executed and
    // re-logged here, before the server accepts a connection, so
    // durable-before-visible holds across the crash. Sorted key order so
    // the regenerated records land deterministically.
    let mut keys: Vec<String> = state.streams.keys().cloned().collect();
    keys.sort();
    for key in keys {
        let st = state.streams.get_mut(&key).expect("key just listed");
        let Some(q) = state.pending.remove(&key) else {
            continue;
        };
        for (p, items) in q {
            let at = st.pipe.stream_len();
            if p != at + 1 {
                return Err(Error::Parse(format!(
                    "wal for shard {shard} is corrupt: stream {key:?} has a logged record at \
                     position {p} but replay stopped at {at} (move the wal dir aside to start \
                     fresh)"
                )));
            }
            st.pipe.advance(Transaction::new(0, items));
            if st.pipe.window().is_full() && st.pipe.since_publish() >= cfg.every {
                let rel = st
                    .pipe
                    .publish_now()
                    .expect("full window cannot be partial");
                writer.append(&WalRecord::Release {
                    stream: key.clone(),
                    stream_len: rel.stream_len,
                    entries: wire_entries(&rel.release),
                })?;
                if cfg.snapshot_every <= 1 || st.published.is_multiple_of(cfg.snapshot_every as u64)
                {
                    writer.append(&WalRecord::Snapshot(snapshot_of(
                        &key,
                        st.kind,
                        &st.pipe,
                        st.published + 1,
                        &rel.release,
                    )))?;
                }
                st.published += 1;
                st.last_len = rel.stream_len;
                state.recovered_windows += 1;
            }
        }
    }
    // Pending for streams that never opened or adopted can only be the
    // residue of closed, forgotten streams in the compaction grace tail —
    // nothing live depends on them.

    stats
        .recovered_windows
        .fetch_add(state.recovered_windows, Ordering::Relaxed);
    Ok(RecoveredShard {
        streams: state.streams,
        writer,
        recovered_windows: state.recovered_windows,
    })
}

fn truncate_tail(path: &Path, keep: u64, stats: &Arc<WalStats>) -> Result<()> {
    let f = std::fs::OpenOptions::new().write(true).open(path)?;
    f.set_len(keep)?;
    f.sync_data()?;
    stats.truncated_tails.fetch_add(1, Ordering::Relaxed);
    Ok(())
}

/// Everything the scan accumulates: the rebuilt streams, the staging
/// buffers the log runs ahead with, and the compaction bookkeeping that
/// seeds the writer's position.
#[derive(Default)]
struct ReplayState {
    streams: HashMap<String, RecoveredStream>,
    pending: HashMap<String, Pending>,
    coverage: HashMap<String, u64>,
    ingest_segs: HashMap<String, u64>,
    recovered_windows: u64,
}

fn apply(
    cfg: &ServeConfig,
    rec: WalRecord,
    seg_idx: u64,
    path: &Path,
    state: &mut ReplayState,
) -> Result<()> {
    let ReplayState {
        streams,
        pending,
        coverage,
        ingest_segs,
        recovered_windows,
    } = state;
    match rec {
        WalRecord::Open { stream, kind } => {
            if streams.contains_key(&stream) {
                return Err(corrupt(
                    path,
                    &format!("duplicate open for stream {stream:?}"),
                ));
            }
            coverage.entry(stream.clone()).or_insert(seg_idx);
            streams.insert(
                stream.clone(),
                RecoveredStream {
                    kind,
                    pipe: cfg.pipeline_with(&stream, kind),
                    published: 0,
                    last_len: 0,
                },
            );
        }
        WalRecord::Ingest {
            stream,
            base,
            batch,
        } => {
            // Stage the chunk; nothing advances until a release (or the
            // end of the log) demands it. The base must continue exactly
            // where the staged-or-replayed stream stands — an offset
            // between checksum-clean records means a forked history.
            let q = pending.entry(stream.clone()).or_default();
            let at = q
                .back()
                .map(|&(p, _)| p)
                .or_else(|| streams.get(&stream).map(|st| st.pipe.stream_len()));
            if let Some(at) = at {
                if base != at {
                    return Err(corrupt(
                        path,
                        &format!(
                            "ingest chunk for {stream:?} claims base {base} but the replayed \
                             stream stands at {at}"
                        ),
                    ));
                }
            }
            for (i, items) in batch.into_iter().enumerate() {
                q.push_back((base + 1 + i as u64, items));
            }
            ingest_segs.insert(stream, seg_idx);
        }
        WalRecord::Release {
            stream,
            stream_len,
            entries,
        } => {
            let Some(st) = streams.get_mut(&stream) else {
                // Compacted prefix: the adopting snapshot covers whatever
                // this release consumed — drop it from the staging buffer
                // so adoption starts at the snapshot's edge.
                if let Some(q) = pending.get_mut(&stream) {
                    while q.front().is_some_and(|&(p, _)| p <= stream_len) {
                        q.pop_front();
                    }
                }
                return Ok(());
            };
            let q = pending.entry(stream.clone()).or_default();
            while st.pipe.stream_len() < stream_len {
                let Some((p, items)) = q.pop_front() else {
                    return Err(corrupt(
                        path,
                        &format!(
                            "logged release for {stream:?} at {stream_len} outruns the logged \
                             ingests (replay stopped at {})",
                            st.pipe.stream_len()
                        ),
                    ));
                };
                debug_assert_eq!(p, st.pipe.stream_len() + 1);
                st.pipe.advance(Transaction::new(0, items));
            }
            let rel = st.pipe.publish_now().map_err(|e| {
                corrupt(
                    path,
                    &format!("logged release at {stream_len} is unpublishable on replay: {e}"),
                )
            })?;
            if rel.stream_len != stream_len || wire_entries(&rel.release) != entries {
                return Err(corrupt(
                    path,
                    &format!(
                        "recomputed release for {stream:?} at stream_len {} diverges from the \
                         logged publication at {stream_len}",
                        rel.stream_len
                    ),
                ));
            }
            st.published += 1;
            st.last_len = stream_len;
            *recovered_windows += 1;
        }
        WalRecord::Snapshot(s) => {
            // Same anchor rule as the writer: the snapshot's basis includes
            // the staged tail of the chunk it landed inside, which may sit
            // in an earlier segment.
            let anchor = ingest_segs.get(&s.stream).copied().unwrap_or(seg_idx);
            coverage.insert(s.stream.clone(), anchor);
            if let Some(st) = streams.get(&s.stream) {
                // Already live (its open survived): the snapshot is purely a
                // compaction barrier, but it is also a free consistency
                // tripwire.
                if st.pipe.stream_len() != s.stream_len || st.published != s.published {
                    return Err(corrupt(
                        path,
                        &format!(
                            "snapshot for live stream {:?} disagrees with replayed state \
                             (stream_len {} vs {}, published {} vs {})",
                            s.stream,
                            s.stream_len,
                            st.pipe.stream_len(),
                            s.published,
                            st.published
                        ),
                    ));
                }
                return Ok(());
            }
            // Adoption: records the snapshot already covers leave the
            // staging buffer; the chunk tail past the snapshot stays and
            // drains at later releases (or the end-of-log drain).
            if let Some(q) = pending.get_mut(&s.stream) {
                while q.front().is_some_and(|&(p, _)| p <= s.stream_len) {
                    q.pop_front();
                }
            }
            streams.insert(s.stream.clone(), adopt(cfg, path, s)?);
        }
    }
    Ok(())
}

/// Rebuild a stream from a snapshot alone (its earlier records were
/// compacted away).
fn adopt(cfg: &ServeConfig, path: &Path, s: StreamSnapshot) -> Result<RecoveredStream> {
    let count = s.window.len() as u64;
    let base = s.stream_len.checked_sub(count).ok_or_else(|| {
        corrupt(
            path,
            &format!(
                "snapshot for {:?} holds {count} window records beyond stream_len {}",
                s.stream, s.stream_len
            ),
        )
    })?;
    let mut pipe = cfg.pipeline_with(&s.stream, s.kind);
    pipe.set_stream_base(base);
    for ids in &s.window {
        pipe.advance(Transaction::new(0, ItemSet::from_ids(ids.iter().copied())));
    }
    pipe.reset_cadence();
    let prev = SanitizedRelease::new(
        s.prev_release
            .iter()
            .map(|e| SanitizedItemset {
                id: ItemsetId::intern(&ItemSet::from_ids(e.ids.iter().copied())),
                true_support: e.true_support,
                sanitized: e.sanitized,
            })
            .collect(),
    );
    pipe.restore_defense(s.published, &prev);
    Ok(RecoveredStream {
        kind: s.kind,
        pipe,
        published: s.published,
        last_len: s.last_len,
    })
}

/// Scan a shard's retained log for `release` records of one stream with
/// `stream_len >= min_len` — the log-based catch-up feed for late
/// subscribers.
///
/// This runs on connection threads while the shard's writer is appending,
/// so it is deliberately tolerant: an invalid record stops the scan (it is
/// the live tail or a racing compaction), a vanished segment file is
/// skipped. The horizon is whatever compaction retained; callers get every
/// release still on disk, oldest first.
pub fn scan_catchup(
    root: &Path,
    shard: usize,
    stream: &str,
    min_len: u64,
) -> Vec<(u64, Vec<BinaryEntry>)> {
    let dir = shard_dir(root, shard);
    let Ok(segs) = list_segments(&dir) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    'segments: for (_, path) in segs {
        let Ok(buf) = std::fs::read(&path) else {
            continue; // compacted underneath us
        };
        let mut off = 0usize;
        loop {
            match scan_one(&buf, off) {
                Scan::End => break,
                Scan::Corrupt { .. } => break 'segments, // live tail
                Scan::Record { rec, end, .. } => {
                    if let WalRecord::Release {
                        stream: s,
                        stream_len,
                        entries,
                    } = rec
                    {
                        if s == stream && stream_len >= min_len {
                            out.push((stream_len, entries));
                        }
                    }
                    off = end;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WalConfig;
    use bfly_common::SanitizedSupport;
    use std::path::PathBuf;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "bfly-wal-replay-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_cfg() -> ServeConfig {
        ServeConfig {
            shards: 1,
            window: 8,
            c: 2,
            k: 1,
            epsilon: 0.2,
            every: 2,
            snapshot_every: 3,
            seed: 1,
            ..ServeConfig::default()
        }
    }

    /// A deterministic record stream with enough support churn to exercise
    /// pins, additions, and removals.
    fn record(i: u64) -> ItemSet {
        let mut ids: Vec<u32> = vec![(i % 3) as u32];
        if i.is_multiple_of(2) {
            ids.push(3);
        }
        if i.is_multiple_of(5) {
            ids.push(4);
        }
        ids.sort_unstable();
        ItemSet::from_ids(ids)
    }

    /// Drive one stream exactly the way the shard worker does, logging to
    /// `writer` — the test twin of the production write points.
    struct Harness {
        pipe: DynPipeline,
        published: u64,
        releases: Vec<(u64, Vec<BinaryEntry>)>,
    }

    fn entries(rel: &SanitizedRelease) -> Vec<BinaryEntry> {
        wire_entries(rel)
    }

    impl Harness {
        fn open(cfg: &ServeConfig, key: &str, writer: &mut WalWriter) -> Harness {
            writer
                .append(&WalRecord::Open {
                    stream: key.into(),
                    kind: DefenseKind::Butterfly,
                })
                .unwrap();
            Harness {
                pipe: cfg.pipeline_with(key, DefenseKind::Butterfly),
                published: 0,
                releases: Vec::new(),
            }
        }

        fn resume(rec: RecoveredStream) -> Harness {
            Harness {
                pipe: rec.pipe,
                published: rec.published,
                releases: Vec::new(),
            }
        }

        /// Feed records in chunks of `chunk`, logging each whole chunk
        /// before advancing any of it — exactly the worker's write order,
        /// so publications land mid-chunk and replay must interleave.
        fn feed(
            &mut self,
            cfg: &ServeConfig,
            key: &str,
            writer: Option<&mut WalWriter>,
            range: std::ops::Range<u64>,
            chunk: usize,
        ) {
            let mut writer = writer;
            let idx: Vec<u64> = range.collect();
            for part in idx.chunks(chunk.max(1)) {
                if let Some(w) = writer.as_deref_mut() {
                    w.append(&WalRecord::Ingest {
                        stream: key.into(),
                        base: self.pipe.stream_len(),
                        batch: part.iter().map(|&i| record(i)).collect(),
                    })
                    .unwrap();
                }
                for &i in part {
                    self.pipe.advance(Transaction::new(0, record(i)));
                    if self.pipe.window().is_full() && self.pipe.since_publish() >= cfg.every {
                        let rel = self.pipe.publish_now().unwrap();
                        let wire = entries(&rel.release);
                        if let Some(w) = writer.as_deref_mut() {
                            w.append(&WalRecord::Release {
                                stream: key.into(),
                                stream_len: rel.stream_len,
                                entries: wire.clone(),
                            })
                            .unwrap();
                            if self.published.is_multiple_of(cfg.snapshot_every as u64) {
                                w.append(&WalRecord::Snapshot(snapshot_of(
                                    key,
                                    DefenseKind::Butterfly,
                                    &self.pipe,
                                    self.published + 1,
                                    &rel.release,
                                )))
                                .unwrap();
                            }
                        }
                        self.published += 1;
                        self.releases.push((rel.stream_len, wire));
                    }
                }
            }
        }
    }

    fn wal_cfg(root: &Path) -> WalConfig {
        WalConfig::new(root)
    }

    #[test]
    fn replay_rebuilds_bit_identical_publisher_state() {
        let root = tmp_root("exact");
        let cfg = tiny_cfg();
        let wal = wal_cfg(&root);
        let stats = Arc::new(WalStats::default());

        // Reference: uncrashed, 60 records straight through, no WAL.
        let mut reference = Harness {
            pipe: cfg.pipeline_with("k", DefenseKind::Butterfly),
            published: 0,
            releases: Vec::new(),
        };
        reference.feed(&cfg, "k", None, 0..60, 7);

        // Crashed twin: logs 35 records, then the process "dies" (writer
        // dropped without any shutdown path).
        let mut w = WalWriter::open(
            &root,
            0,
            wal.clone(),
            cfg.snapshot_every,
            stats.clone(),
            WriterPosition::default(),
        )
        .unwrap();
        let mut crashed = Harness::open(&cfg, "k", &mut w);
        crashed.feed(&cfg, "k", Some(&mut w), 0..35, 7);
        let before_crash = crashed.releases.clone();
        drop(w);
        drop(crashed);

        let mut rec = recover_shard(&cfg, &wal, 0, &stats).unwrap();
        assert_eq!(rec.recovered_windows, before_crash.len() as u64);
        let st = rec.streams.remove("k").expect("stream recovered");
        assert_eq!(st.pipe.stream_len(), 35);
        assert_eq!(st.last_len, before_crash.last().unwrap().0);
        let mut resumed = Harness::resume(st);
        resumed.feed(&cfg, "k", Some(&mut rec.writer), 35..60, 7);

        let full: Vec<_> = before_crash.into_iter().chain(resumed.releases).collect();
        assert_eq!(
            full, reference.releases,
            "restarted stream must publish byte-identical releases"
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_replay_continues() {
        let root = tmp_root("torn");
        let cfg = tiny_cfg();
        let wal = wal_cfg(&root);
        let stats = Arc::new(WalStats::default());
        let mut w = WalWriter::open(
            &root,
            0,
            wal.clone(),
            cfg.snapshot_every,
            stats.clone(),
            WriterPosition::default(),
        )
        .unwrap();
        let mut h = Harness::open(&cfg, "k", &mut w);
        h.feed(&cfg, "k", Some(&mut w), 0..20, 7);
        drop(w);

        // Tear the tail: a half-written record (valid prefix, cut payload).
        let seg = shard_dir(&root, 0).join(crate::wal::segment::segment_file_name(0));
        let mut bytes = std::fs::read(&seg).unwrap();
        let torn = WalRecord::Ingest {
            stream: "k".into(),
            base: 20,
            batch: vec![record(99)],
        }
        .encode(9999);
        bytes.extend_from_slice(&torn[..torn.len() / 2]);
        std::fs::write(&seg, &bytes).unwrap();

        let rec = recover_shard(&cfg, &wal, 0, &stats).unwrap();
        assert_eq!(stats.truncated_tails.load(Ordering::Relaxed), 1);
        assert_eq!(rec.streams["k"].pipe.stream_len(), 20);
        // The truncated file must now replay clean.
        let stats2 = Arc::new(WalStats::default());
        drop(rec);
        recover_shard(&cfg, &wal, 0, &stats2).unwrap();
        assert_eq!(stats2.truncated_tails.load(Ordering::Relaxed), 0);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn bit_flip_in_a_sealed_segment_refuses_to_start() {
        let root = tmp_root("flip");
        let cfg = tiny_cfg();
        let mut wal = wal_cfg(&root);
        wal.segment_min_bytes = 1; // rotate aggressively → several segments
        wal.keep_segments = 100; // retain everything: flip a sealed one
        let stats = Arc::new(WalStats::default());
        let mut w = WalWriter::open(
            &root,
            0,
            wal.clone(),
            cfg.snapshot_every,
            stats.clone(),
            WriterPosition::default(),
        )
        .unwrap();
        let mut h = Harness::open(&cfg, "k", &mut w);
        h.feed(&cfg, "k", Some(&mut w), 0..40, 7);
        drop(w);

        let segs = list_segments(&shard_dir(&root, 0)).unwrap();
        assert!(segs.len() >= 2, "need a sealed segment, got {segs:?}");
        let sealed = &segs[0].1;
        let mut bytes = std::fs::read(sealed).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(sealed, &bytes).unwrap();

        let err = match recover_shard(&cfg, &wal, 0, &stats) {
            Err(e) => e,
            Ok(_) => panic!("recovery accepted a bit-flipped sealed segment"),
        };
        assert!(
            err.to_string().contains("corrupt mid-log"),
            "unexpected error: {err}"
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn snapshot_adoption_survives_compaction_of_the_stream_birth() {
        let root = tmp_root("adopt");
        let cfg = tiny_cfg();
        let mut wal = wal_cfg(&root);
        wal.segment_min_bytes = 1;
        wal.keep_segments = 0; // compact hard: the open record must die
        let stats = Arc::new(WalStats::default());

        let mut reference = Harness {
            pipe: cfg.pipeline_with("k", DefenseKind::Butterfly),
            published: 0,
            releases: Vec::new(),
        };
        reference.feed(&cfg, "k", None, 0..80, 7);

        let mut w = WalWriter::open(
            &root,
            0,
            wal.clone(),
            cfg.snapshot_every,
            stats.clone(),
            WriterPosition::default(),
        )
        .unwrap();
        let mut crashed = Harness::open(&cfg, "k", &mut w);
        crashed.feed(&cfg, "k", Some(&mut w), 0..60, 7);
        let before = crashed.releases.clone();
        drop(w);

        let segs = list_segments(&shard_dir(&root, 0)).unwrap();
        assert!(segs[0].0 > 0, "compaction never dropped the birth segment");

        let mut rec = recover_shard(&cfg, &wal, 0, &stats).unwrap();
        let st = rec.streams.remove("k").expect("adopted from snapshot");
        assert_eq!(st.pipe.stream_len(), 60);
        // The pin map must have survived: continuing the stream publishes
        // exactly what the uncrashed run publishes, including republication
        // pins chosen windows before the snapshot.
        let mut resumed = Harness::resume(st);
        resumed.feed(&cfg, "k", Some(&mut rec.writer), 60..80, 7);
        let full: Vec<_> = before.into_iter().chain(resumed.releases).collect();
        assert_eq!(full, reference.releases);
        std::fs::remove_dir_all(&root).unwrap();
    }

    /// The crash window the lazy drain exists for: a chunk's `ingest`
    /// record made it to disk, the publications its records trigger did
    /// not. Recovery must re-execute those publications — with the
    /// worker's own cadence rule — and re-log them, so catch-up readers
    /// see them without any live publication having happened.
    #[test]
    fn torn_release_is_regenerated_and_relogged() {
        let root = tmp_root("regen");
        let cfg = tiny_cfg();
        let wal = wal_cfg(&root);
        let stats = Arc::new(WalStats::default());

        let mut reference = Harness {
            pipe: cfg.pipeline_with("k", DefenseKind::Butterfly),
            published: 0,
            releases: Vec::new(),
        };
        reference.feed(&cfg, "k", None, 0..20, 7);

        let mut w = WalWriter::open(
            &root,
            0,
            wal.clone(),
            cfg.snapshot_every,
            stats.clone(),
            WriterPosition::default(),
        )
        .unwrap();
        let mut crashed = Harness::open(&cfg, "k", &mut w);
        crashed.feed(&cfg, "k", Some(&mut w), 0..9, 9);
        assert_eq!(crashed.releases.len(), 1, "one publication at 8");
        // The next chunk crosses the cadence points at 10 and 12, but the
        // process dies right after the chunk's append: the log holds the
        // records and neither release.
        w.append(&WalRecord::Ingest {
            stream: "k".into(),
            base: 9,
            batch: (9..12).map(record).collect(),
        })
        .unwrap();
        drop(w);

        let mut rec = recover_shard(&cfg, &wal, 0, &stats).unwrap();
        assert_eq!(
            rec.recovered_windows, 3,
            "one verified release plus two regenerated ones"
        );
        let st = rec.streams.remove("k").expect("stream recovered");
        assert_eq!(st.pipe.stream_len(), 12);
        assert_eq!(st.published, 3);
        assert_eq!(st.last_len, 12);
        // The regenerated publications are back in the log: catch-up sees
        // all three, byte-equal to the uncrashed run's first three.
        let logged = scan_catchup(&root, 0, "k", 0);
        assert_eq!(logged, reference.releases[..3].to_vec());
        // And the stream continues byte-identically from there.
        let mut resumed = Harness::resume(st);
        resumed.feed(&cfg, "k", Some(&mut rec.writer), 12..20, 7);
        let full: Vec<_> = logged.into_iter().chain(resumed.releases).collect();
        assert_eq!(full, reference.releases);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn catchup_scan_returns_logged_releases_from_a_floor() {
        let root = tmp_root("catchup");
        let cfg = tiny_cfg();
        let wal = wal_cfg(&root);
        let stats = Arc::new(WalStats::default());
        let mut w = WalWriter::open(
            &root,
            0,
            wal,
            cfg.snapshot_every,
            stats,
            WriterPosition::default(),
        )
        .unwrap();
        let mut h = Harness::open(&cfg, "k", &mut w);
        // A second stream interleaved: the scan must filter it out.
        let mut other = Harness::open(&cfg, "other", &mut w);
        h.feed(&cfg, "k", Some(&mut w), 0..30, 7);
        other.feed(&cfg, "other", Some(&mut w), 0..10, 7);
        drop(w);

        let all = scan_catchup(&root, 0, "k", 0);
        assert_eq!(all, h.releases, "earliest catch-up must be the full log");
        let floor = h.releases[2].0;
        let late = scan_catchup(&root, 0, "k", floor);
        assert_eq!(late, h.releases[2..].to_vec());
        assert!(scan_catchup(&root, 0, "nobody", 0).is_empty());
        // Sanity: supports is the sanitized value, not the true one.
        let _: SanitizedSupport = all[0].1[0].support;
        std::fs::remove_dir_all(&root).unwrap();
    }
}
