//! Durable per-shard write-ahead release log (DESIGN.md §11).
//!
//! Each shard worker owns one append-only log under
//! `wal_dir/shard-<idx>/`, recording everything that shaped its streams:
//! key materializations (`open`), accepted transaction chunks (`ingest`,
//! logged before the pipeline advances), sanitized publications
//! (`release`, logged before fan-out), and periodic full-state
//! `snapshot`s that let compaction drop history. The building blocks:
//!
//! * [`record`] — the checksummed, sequence-numbered record format;
//!   `ingest`/`release` payloads are exactly the wire protocol's binary
//!   frame payloads, so the log doubles as a byte-exact replay feed.
//! * [`segment`] — segment file naming and listing; append-only while
//!   live, immutable once rotated.
//! * [`writer`] — the shard-thread append path: sync policy
//!   (`--wal-sync always|interval:<n>|never`), snapshot-keyed rotation,
//!   coverage-based compaction.
//! * [`replay`] — startup recovery (re-execute and *verify* the log,
//!   truncating a torn tail) and the log-based catch-up scan serving
//!   `subscribe {"from": ...}`.

pub mod record;
pub mod segment;
pub mod writer;

pub mod replay;

pub use record::{StreamSnapshot, WalRecord};
pub use replay::{recover_shard, scan_catchup, snapshot_of, RecoveredShard, RecoveredStream};
pub use writer::{WalWriter, WriterPosition};
