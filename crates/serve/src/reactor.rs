//! Std-only epoll reactor: one thread owns accept and every connection.
//!
//! The blocking io mode spends three threads per connection-ish unit of work
//! (handler, writer pump, and a slice of the accept thread); under many
//! connections the memory and context-switch cost dominates the actual
//! protocol work. The reactor replaces all of that with a single thread
//! running a readiness loop over nonblocking sockets:
//!
//! * **accept** — the listener is registered for read readiness; each burst
//!   accepts until `WouldBlock`.
//! * **reads** — each connection feeds a [`FrameCodec`]; every decoded frame
//!   is dispatched through the same [`crate::server::dispatch_frame`] the
//!   blocking mode uses, and replies are appended to the connection's write
//!   buffer directly.
//! * **writes** — buffered chunks drain when the socket is writable;
//!   `EPOLLOUT` interest exists only while the buffer is non-empty, and read
//!   interest is shed while a connection's write buffer is saturated
//!   (read-backpressure instead of unbounded buffering).
//! * **fan-out** — shard workers publish through [`EventSink`]s: a bounded
//!   per-subscriber budget plus a mailbox the reactor drains between
//!   readiness batches. A full budget drops the subscription (same slow-
//!   client semantics as the blocking pump), never blocks the worker.
//!
//! There is no libc in this workspace, so `epoll_create1`/`epoll_ctl`/
//! `epoll_wait` are raw syscall shims (`std::arch::asm!`) for x86_64 and
//! aarch64 Linux — the bench targets. Everywhere else the module is a stub
//! and [`crate::config::REACTOR_SUPPORTED`] is false (config validation
//! rejects selecting the reactor there).

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub use imp::{spawn, EventSink, Mail, Runtime};

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
pub use stub::{spawn, EventSink, Mail, Runtime};

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod imp {
    use crate::fanout::{OutBytes, SubscriberSink};
    use crate::server::{dispatch_frame, Shared};
    use bfly_common::{Error, FrameCodec};
    use std::collections::{HashMap, VecDeque};
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex};
    use std::thread::JoinHandle;
    use std::time::{Duration, Instant};

    /// How long one `epoll_wait` sleeps with nothing ready: the reactor's
    /// shutdown-flag poll cadence, mirroring the blocking mode's read
    /// timeout.
    const WAIT_TICK_MS: i32 = 100;
    /// Finalize grace: how long the reactor keeps flushing write buffers
    /// after the drain is complete before giving up on dead peers.
    const FINALIZE_GRACE: Duration = Duration::from_secs(5);
    /// Readiness batch size per `epoll_wait`.
    const MAX_EVENTS: usize = 64;

    /// Raw epoll syscall shims. Numbers differ per architecture; the shim
    /// exposes one portable surface.
    mod sys {
        use std::arch::asm;
        use std::io;

        #[cfg(target_arch = "x86_64")]
        mod nr {
            pub const CLOSE: i64 = 3;
            pub const EPOLL_WAIT: i64 = 232;
            pub const EPOLL_CTL: i64 = 233;
            pub const EPOLL_CREATE1: i64 = 291;
        }
        #[cfg(target_arch = "aarch64")]
        mod nr {
            pub const EPOLL_CREATE1: i64 = 20;
            pub const EPOLL_CTL: i64 = 21;
            pub const EPOLL_PWAIT: i64 = 22;
            pub const CLOSE: i64 = 57;
        }

        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;
        pub const CTL_ADD: i64 = 1;
        pub const CTL_DEL: i64 = 2;
        pub const CTL_MOD: i64 = 3;
        const EPOLL_CLOEXEC: i64 = 0x80000;
        const EINTR: i32 = 4;

        /// The kernel's `struct epoll_event`. Packed on x86_64 only — the
        /// kernel ABI quirk that keeps the 12-byte layout there.
        #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
        #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
        #[derive(Clone, Copy, Default)]
        pub struct EpollEvent {
            pub events: u32,
            pub data: u64,
        }

        #[cfg(target_arch = "x86_64")]
        unsafe fn syscall6(n: i64, a: i64, b: i64, c: i64, d: i64, e: i64, f: i64) -> i64 {
            let ret: i64;
            asm!(
                "syscall",
                inlateout("rax") n => ret,
                in("rdi") a,
                in("rsi") b,
                in("rdx") c,
                in("r10") d,
                in("r8") e,
                in("r9") f,
                out("rcx") _,
                out("r11") _,
                options(nostack),
            );
            ret
        }

        #[cfg(target_arch = "aarch64")]
        unsafe fn syscall6(n: i64, a: i64, b: i64, c: i64, d: i64, e: i64, f: i64) -> i64 {
            let ret: i64;
            asm!(
                "svc #0",
                in("x8") n,
                inlateout("x0") a => ret,
                in("x1") b,
                in("x2") c,
                in("x3") d,
                in("x4") e,
                in("x5") f,
                options(nostack),
            );
            ret
        }

        fn check(ret: i64) -> io::Result<i64> {
            if ret < 0 {
                Err(io::Error::from_raw_os_error(-ret as i32))
            } else {
                Ok(ret)
            }
        }

        /// `epoll_create1(EPOLL_CLOEXEC)`.
        pub fn epoll_create1() -> io::Result<i32> {
            let ret = unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) };
            check(ret).map(|fd| fd as i32)
        }

        /// `epoll_ctl(ep, op, fd, event)`.
        pub fn epoll_ctl(ep: i32, op: i64, fd: i32, mut ev: EpollEvent) -> io::Result<()> {
            // DEL must pass a null event on old kernels; everywhere else the
            // pointer is read before the call returns, so a stack local is
            // fine.
            let ptr = if op == CTL_DEL {
                0i64
            } else {
                &mut ev as *mut EpollEvent as i64
            };
            let ret = unsafe { syscall6(nr::EPOLL_CTL, ep as i64, op, fd as i64, ptr, 0, 0) };
            check(ret).map(|_| ())
        }

        /// `epoll_wait` (x86_64) / `epoll_pwait` with a null sigmask
        /// (aarch64, which has no plain `epoll_wait`). `EINTR` is reported
        /// as zero events — the caller's loop re-enters anyway.
        pub fn epoll_wait(
            ep: i32,
            events: &mut [EpollEvent],
            timeout_ms: i32,
        ) -> io::Result<usize> {
            let ret = unsafe {
                #[cfg(target_arch = "x86_64")]
                {
                    syscall6(
                        nr::EPOLL_WAIT,
                        ep as i64,
                        events.as_mut_ptr() as i64,
                        events.len() as i64,
                        timeout_ms as i64,
                        0,
                        0,
                    )
                }
                #[cfg(target_arch = "aarch64")]
                {
                    syscall6(
                        nr::EPOLL_PWAIT,
                        ep as i64,
                        events.as_mut_ptr() as i64,
                        events.len() as i64,
                        timeout_ms as i64,
                        0, // null sigmask: plain epoll_wait semantics
                        8, // sigsetsize (ignored with a null mask)
                    )
                }
            };
            match check(ret) {
                Ok(n) => Ok(n as usize),
                Err(e) if e.raw_os_error() == Some(EINTR) => Ok(0),
                Err(e) => Err(e),
            }
        }

        /// `close(fd)` — for the epoll fd itself, which is not a std type.
        pub fn close(fd: i32) {
            let _ = unsafe { syscall6(nr::CLOSE, fd as i64, 0, 0, 0, 0, 0) };
        }
    }

    /// Owned epoll instance: closes its fd on drop.
    struct Epoll(i32);

    impl Epoll {
        fn new() -> std::io::Result<Epoll> {
            sys::epoll_create1().map(Epoll)
        }

        fn add(&self, fd: i32, interest: u32, token: u64) -> std::io::Result<()> {
            sys::epoll_ctl(
                self.0,
                sys::CTL_ADD,
                fd,
                sys::EpollEvent {
                    events: interest,
                    data: token,
                },
            )
        }

        fn modify(&self, fd: i32, interest: u32, token: u64) -> std::io::Result<()> {
            sys::epoll_ctl(
                self.0,
                sys::CTL_MOD,
                fd,
                sys::EpollEvent {
                    events: interest,
                    data: token,
                },
            )
        }

        fn del(&self, fd: i32) {
            let _ = sys::epoll_ctl(self.0, sys::CTL_DEL, fd, sys::EpollEvent::default());
        }

        fn wait(&self, events: &mut [sys::EpollEvent], timeout_ms: i32) -> std::io::Result<usize> {
            sys::epoll_wait(self.0, events, timeout_ms)
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            sys::close(self.0);
        }
    }

    /// Cross-thread input to the reactor.
    pub enum Mail {
        /// Fan one publication frame out to connection `conn`.
        Publish {
            /// Target connection id.
            conn: u64,
            /// The serialized frame.
            bytes: OutBytes,
        },
        /// Drain complete (workers joined, registry cleared): flush every
        /// write buffer and exit.
        Finalize,
    }

    /// The reactor's cross-thread face: a mailbox plus a wake pipe. Shard
    /// workers push publications here; [`crate::server::Server::join`]
    /// pushes the final [`Mail::Finalize`].
    pub struct ReactorShared {
        mailbox: Mutex<VecDeque<Mail>>,
        /// Write side of the wake pipe (nonblocking; a full pipe already
        /// means a wake is pending).
        wake_tx: UnixStream,
    }

    impl ReactorShared {
        /// Enqueue one mail and wake the loop.
        pub fn push(&self, mail: Mail) {
            self.mailbox
                .lock()
                .expect("reactor mailbox poisoned")
                .push_back(mail);
            let _ = (&self.wake_tx).write(&[1]);
        }

        fn drain(&self) -> Vec<Mail> {
            let mut box_ = self.mailbox.lock().expect("reactor mailbox poisoned");
            box_.drain(..).collect()
        }
    }

    /// A subscriber's sink in reactor mode: a bounded count of in-flight
    /// publication frames for one connection. `try_send` reserves budget and
    /// mails the frame; the budget is released only when the frame has fully
    /// reached the socket — so a stalled peer exhausts its budget and is
    /// dropped by the registry, exactly like a full pump queue in blocking
    /// mode.
    pub struct EventSink {
        conn: u64,
        shared: Arc<ReactorShared>,
        pending: AtomicUsize,
        cap: usize,
        closed: AtomicBool,
    }

    impl EventSink {
        /// Try to enqueue one publication frame; `Err` when the connection
        /// is gone or its event budget is exhausted.
        pub(crate) fn try_send(&self, bytes: OutBytes) -> Result<(), ()> {
            if self.closed.load(Ordering::Acquire) {
                return Err(());
            }
            let mut p = self.pending.load(Ordering::Relaxed);
            loop {
                if p >= self.cap {
                    return Err(());
                }
                match self.pending.compare_exchange_weak(
                    p,
                    p + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => p = seen,
                }
            }
            self.shared.push(Mail::Publish {
                conn: self.conn,
                bytes,
            });
            Ok(())
        }

        /// One mailed frame fully reached the socket: release its budget.
        fn complete(&self) {
            self.pending.fetch_sub(1, Ordering::Relaxed);
        }

        fn close(&self) {
            self.closed.store(true, Ordering::Release);
        }
    }

    /// A live reactor: join the thread after pushing [`Mail::Finalize`].
    pub struct Runtime {
        /// The reactor thread.
        pub thread: JoinHandle<()>,
        /// Mailbox/wake handle.
        pub shared: Arc<ReactorShared>,
    }

    /// Spawn the reactor thread over an already-bound listener.
    pub fn spawn(listener: TcpListener, srv: Arc<Shared>) -> std::io::Result<Runtime> {
        listener.set_nonblocking(true)?;
        let (wake_rx, wake_tx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        let shared = Arc::new(ReactorShared {
            mailbox: Mutex::new(VecDeque::new()),
            wake_tx,
        });
        let ep = Epoll::new()?;
        ep.add(listener.as_raw_fd(), sys::EPOLLIN, TOKEN_LISTENER)?;
        ep.add(wake_rx.as_raw_fd(), sys::EPOLLIN, TOKEN_WAKE)?;
        srv.reactor.fds.store(2, Ordering::Relaxed);
        let thread_shared = shared.clone();
        let thread = std::thread::Builder::new()
            .name("bfly-reactor".into())
            .spawn(move || {
                Reactor {
                    ep,
                    listener: Some(listener),
                    wake_rx,
                    conns: HashMap::new(),
                    srv,
                    shared: thread_shared,
                    finalize_at: None,
                }
                .run()
            })
            .expect("spawn reactor thread");
        Ok(Runtime { thread, shared })
    }

    const TOKEN_LISTENER: u64 = u64::MAX;
    const TOKEN_WAKE: u64 = u64::MAX - 1;

    /// One buffered outbound chunk; `event` marks frames that hold
    /// [`EventSink`] budget.
    struct WChunk {
        bytes: OutBytes,
        off: usize,
        event: bool,
    }

    /// Per-connection state machine.
    struct Conn {
        stream: TcpStream,
        codec: FrameCodec,
        wbuf: VecDeque<WChunk>,
        sink: Arc<EventSink>,
        /// Epoll interest currently registered for this fd.
        interest: u32,
        /// No more reads; flush `wbuf`, then close.
        closing: bool,
    }

    struct Reactor {
        ep: Epoll,
        listener: Option<TcpListener>,
        wake_rx: UnixStream,
        conns: HashMap<u64, Conn>,
        srv: Arc<Shared>,
        shared: Arc<ReactorShared>,
        /// Set when [`Mail::Finalize`] arrives: flush deadline.
        finalize_at: Option<Instant>,
    }

    impl Reactor {
        fn run(mut self) {
            let mut events = [sys::EpollEvent::default(); MAX_EVENTS];
            loop {
                self.process_mailbox();
                if self.srv.shutdown.load(Ordering::SeqCst) {
                    self.drop_listener();
                }
                self.reap_closed();
                if let Some(deadline) = self.finalize_at {
                    if self.conns.is_empty() || Instant::now() >= deadline {
                        break;
                    }
                }
                let n = match self.ep.wait(&mut events, WAIT_TICK_MS) {
                    Ok(n) => n,
                    Err(_) => break,
                };
                if n > 0 {
                    self.srv.reactor.wakeups.fetch_add(1, Ordering::Relaxed);
                }
                for ev in &events[..n] {
                    // Copy out of the (possibly packed) kernel struct.
                    let token = ev.data;
                    let ready = ev.events;
                    match token {
                        TOKEN_LISTENER => self.accept_burst(),
                        TOKEN_WAKE => self.drain_wake(),
                        conn_id => {
                            if ready & (sys::EPOLLOUT | sys::EPOLLERR | sys::EPOLLHUP) != 0 {
                                self.conn_write(conn_id);
                            }
                            if ready & (sys::EPOLLIN | sys::EPOLLERR | sys::EPOLLHUP) != 0 {
                                self.conn_read(conn_id);
                            }
                        }
                    }
                }
            }
            self.srv.reactor.fds.store(0, Ordering::Relaxed);
        }

        fn drop_listener(&mut self) {
            if let Some(listener) = self.listener.take() {
                self.ep.del(listener.as_raw_fd());
                self.srv.reactor.fds.fetch_sub(1, Ordering::Relaxed);
            }
        }

        fn accept_burst(&mut self) {
            loop {
                let Some(listener) = self.listener.as_ref() else {
                    return;
                };
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let _ = stream.set_nodelay(true);
                        let conn_id = self.srv.conn_seq.fetch_add(1, Ordering::Relaxed);
                        let sink = Arc::new(EventSink {
                            conn: conn_id,
                            shared: self.shared.clone(),
                            pending: AtomicUsize::new(0),
                            cap: self.srv.cfg.out_queue_cap,
                            closed: AtomicBool::new(false),
                        });
                        let conn = Conn {
                            stream,
                            codec: FrameCodec::with_max(self.srv.cfg.max_frame_bytes),
                            wbuf: VecDeque::new(),
                            sink,
                            interest: sys::EPOLLIN,
                            closing: false,
                        };
                        if self
                            .ep
                            .add(conn.stream.as_raw_fd(), sys::EPOLLIN, conn_id)
                            .is_err()
                        {
                            continue;
                        }
                        self.srv
                            .reactor
                            .accepted_conns
                            .fetch_add(1, Ordering::Relaxed);
                        self.srv.reactor.fds.fetch_add(1, Ordering::Relaxed);
                        self.conns.insert(conn_id, conn);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => return,
                }
            }
        }

        fn drain_wake(&mut self) {
            let mut sink = [0u8; 64];
            while matches!((&self.wake_rx).read(&mut sink), Ok(n) if n > 0) {}
        }

        /// Deliver mailed publications into connection write buffers.
        fn process_mailbox(&mut self) {
            let mails = self.shared.drain();
            let mut touched = Vec::new();
            for mail in mails {
                match mail {
                    Mail::Publish { conn, bytes } => {
                        if let Some(c) = self.conns.get_mut(&conn) {
                            c.wbuf.push_back(WChunk {
                                bytes,
                                off: 0,
                                event: true,
                            });
                            if !touched.contains(&conn) {
                                touched.push(conn);
                            }
                        }
                        // Connection already gone: the frame is dropped, and
                        // its sink is closed so the registry sheds the
                        // subscription on the next publish.
                    }
                    Mail::Finalize => {
                        self.finalize_at = Some(Instant::now() + FINALIZE_GRACE);
                        let ids: Vec<u64> = self.conns.keys().copied().collect();
                        for id in ids {
                            self.start_closing(id);
                        }
                    }
                }
            }
            for id in touched {
                self.conn_write(id);
            }
        }

        /// Stop reading `id`: unsubscribe, refuse new events, flush what is
        /// buffered, then close.
        fn start_closing(&mut self, id: u64) {
            if let Some(conn) = self.conns.get_mut(&id) {
                if !conn.closing {
                    conn.closing = true;
                    conn.sink.close();
                    self.srv.registry.unsubscribe_conn(id);
                }
                self.update_interest(id);
            }
        }

        /// Re-register the fd's epoll interest from its state: read interest
        /// unless closing or write-saturated (read-backpressure), write
        /// interest while anything is buffered.
        fn update_interest(&mut self, id: u64) {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            let mut want = 0;
            if !conn.closing && conn.wbuf.len() <= self.srv.cfg.out_queue_cap {
                want |= sys::EPOLLIN;
            }
            if !conn.wbuf.is_empty() {
                want |= sys::EPOLLOUT;
            }
            if want != conn.interest {
                let _ = self.ep.modify(conn.stream.as_raw_fd(), want, id);
                conn.interest = want;
            }
        }

        /// Read burst: consume socket bytes, decode frames, dispatch.
        fn conn_read(&mut self, id: u64) {
            let srv = self.srv.clone();
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            if conn.closing {
                return;
            }
            let sink = conn.sink.clone();
            let mut eof = false;
            let mut dead = false;
            let mut buf = [0u8; 4096];
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(n) => {
                        conn.codec.extend(&buf[..n]);
                        loop {
                            match conn.codec.next_frame() {
                                Ok(Some(frame)) => {
                                    let mut replies: Vec<OutBytes> = Vec::new();
                                    dispatch_frame(
                                        id,
                                        frame,
                                        &srv,
                                        &mut |bytes| {
                                            replies.push(bytes);
                                            true
                                        },
                                        &mut || SubscriberSink::Event(sink.clone()),
                                    );
                                    for bytes in replies {
                                        conn.wbuf.push_back(WChunk {
                                            bytes,
                                            off: 0,
                                            event: false,
                                        });
                                    }
                                }
                                Ok(None) => break,
                                Err(Error::Parse(msg)) => {
                                    // Same contract as the blocking handler:
                                    // malformed frames are recoverable (the
                                    // codec stays aligned), oversized ones
                                    // end the connection after the reply.
                                    conn.wbuf.push_back(WChunk {
                                        bytes: crate::fanout::json_line(
                                            &crate::protocol::error_reply(&msg),
                                        ),
                                        off: 0,
                                        event: false,
                                    });
                                    if msg.contains("oversized") {
                                        eof = true;
                                        break;
                                    }
                                }
                                Err(_) => {
                                    dead = true;
                                    break;
                                }
                            }
                        }
                        if eof || dead {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if dead {
                self.teardown(id);
                return;
            }
            if eof {
                // Mirror the blocking shape: stop reading, drain what is
                // buffered, then close.
                self.start_closing(id);
            }
            self.conn_write(id);
        }

        /// Write burst: drain the connection's buffered chunks until the
        /// socket pushes back.
        fn conn_write(&mut self, id: u64) {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            let mut dead = false;
            while let Some(chunk) = conn.wbuf.front_mut() {
                let remaining = &chunk.bytes[chunk.off..];
                match conn.stream.write(remaining) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => {
                        chunk.off += n;
                        if chunk.off == chunk.bytes.len() {
                            let done = conn.wbuf.pop_front().expect("front just written");
                            if done.event {
                                conn.sink.complete();
                            }
                        } else {
                            self.srv
                                .reactor
                                .partial_writes
                                .fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        self.srv
                            .reactor
                            .partial_writes
                            .fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if dead || (conn.closing && conn.wbuf.is_empty()) {
                self.teardown(id);
            } else {
                self.update_interest(id);
            }
        }

        /// Remove a connection entirely: deregister, unsubscribe, close.
        fn teardown(&mut self, id: u64) {
            if let Some(conn) = self.conns.remove(&id) {
                self.ep.del(conn.stream.as_raw_fd());
                conn.sink.close();
                self.srv.registry.unsubscribe_conn(id);
                self.srv.reactor.fds.fetch_sub(1, Ordering::Relaxed);
            }
        }

        /// Sweep connections that finished closing outside an event (e.g.
        /// marked by Finalize with an already-empty buffer).
        fn reap_closed(&mut self) {
            let done: Vec<u64> = self
                .conns
                .iter()
                .filter(|(_, c)| c.closing && c.wbuf.is_empty())
                .map(|(id, _)| *id)
                .collect();
            for id in done {
                self.teardown(id);
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn epoll_observes_pipe_readiness() {
            let ep = Epoll::new().unwrap();
            let (a, b) = UnixStream::pair().unwrap();
            a.set_nonblocking(true).unwrap();
            b.set_nonblocking(true).unwrap();
            ep.add(a.as_raw_fd(), sys::EPOLLIN, 7).unwrap();

            let mut events = [sys::EpollEvent::default(); 4];
            // Nothing written yet: a zero-timeout wait sees nothing.
            assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

            (&b).write_all(&[1]).unwrap();
            let n = ep.wait(&mut events, 1000).unwrap();
            assert_eq!(n, 1);
            let data = events[0].data;
            let ready = events[0].events;
            assert_eq!(data, 7);
            assert_ne!(ready & sys::EPOLLIN, 0);

            // Level-triggered: still ready until drained.
            assert_eq!(ep.wait(&mut events, 0).unwrap(), 1);
            let mut buf = [0u8; 8];
            let _ = (&a).read(&mut buf).unwrap();
            assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
        }

        #[test]
        fn epoll_mod_and_del_change_interest() {
            let ep = Epoll::new().unwrap();
            let (a, b) = UnixStream::pair().unwrap();
            a.set_nonblocking(true).unwrap();
            ep.add(a.as_raw_fd(), sys::EPOLLIN, 1).unwrap();
            (&b).write_all(&[1]).unwrap();
            let mut events = [sys::EpollEvent::default(); 4];
            assert_eq!(ep.wait(&mut events, 100).unwrap(), 1);

            // Drop read interest: the pending byte no longer wakes us.
            ep.modify(a.as_raw_fd(), 0, 1).unwrap();
            assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

            ep.modify(a.as_raw_fd(), sys::EPOLLIN, 1).unwrap();
            assert_eq!(ep.wait(&mut events, 0).unwrap(), 1);

            ep.del(a.as_raw_fd());
            assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
        }

        fn test_sink(cap: usize) -> (Arc<ReactorShared>, EventSink) {
            let (_rx, wake_tx) = UnixStream::pair().unwrap();
            wake_tx.set_nonblocking(true).unwrap();
            let shared = Arc::new(ReactorShared {
                mailbox: Mutex::new(VecDeque::new()),
                wake_tx,
            });
            let sink = EventSink {
                conn: 9,
                shared: shared.clone(),
                pending: AtomicUsize::new(0),
                cap,
                closed: AtomicBool::new(false),
            };
            (shared, sink)
        }

        #[test]
        fn event_sink_budget_bounds_inflight_frames() {
            let (shared, sink) = test_sink(2);
            let bytes: OutBytes = Arc::from(b"x".to_vec().into_boxed_slice());
            assert!(sink.try_send(bytes.clone()).is_ok());
            assert!(sink.try_send(bytes.clone()).is_ok());
            assert!(sink.try_send(bytes.clone()).is_err(), "budget must cap");
            assert_eq!(shared.drain().len(), 2, "only reserved sends are mailed");
        }

        #[test]
        fn event_sink_budget_releases_on_complete_and_close_is_final() {
            let (shared, sink) = test_sink(1);
            let bytes: OutBytes = Arc::from(b"x".to_vec().into_boxed_slice());
            assert!(sink.try_send(bytes.clone()).is_ok());
            assert!(sink.try_send(bytes.clone()).is_err());
            sink.complete();
            assert!(sink.try_send(bytes.clone()).is_ok());
            sink.close();
            sink.complete();
            assert!(sink.try_send(bytes).is_err(), "closed sink must refuse");
            assert_eq!(
                shared
                    .drain()
                    .iter()
                    .filter(|m| matches!(m, Mail::Publish { conn: 9, .. }))
                    .count(),
                2
            );
        }
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod stub {
    use crate::fanout::OutBytes;
    use crate::server::Shared;
    use std::net::TcpListener;
    use std::sync::Arc;
    use std::thread::JoinHandle;

    /// Unsupported-platform stand-in; see the module docs.
    pub enum Mail {
        /// Matches the real variant for call sites.
        Publish {
            /// Target connection id.
            conn: u64,
            /// The serialized frame.
            bytes: OutBytes,
        },
        /// Matches the real variant for call sites.
        Finalize,
    }

    /// Unsupported-platform stand-in: never constructed at runtime
    /// (config validation rejects reactor mode here).
    pub struct ReactorShared;

    impl ReactorShared {
        /// No-op on the stub.
        pub fn push(&self, _mail: Mail) {}
    }

    /// Unsupported-platform stand-in; never constructed.
    pub struct EventSink;

    impl EventSink {
        pub(crate) fn try_send(&self, _bytes: OutBytes) -> Result<(), ()> {
            Err(())
        }
    }

    /// Unsupported-platform stand-in; never constructed.
    pub struct Runtime {
        /// Never spawned.
        pub thread: JoinHandle<()>,
        /// Never constructed.
        pub shared: Arc<ReactorShared>,
    }

    /// Always fails: the reactor needs the Linux epoll shims.
    pub fn spawn(_listener: TcpListener, _srv: Arc<Shared>) -> std::io::Result<Runtime> {
        Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "reactor io mode is not supported on this platform",
        ))
    }
}
