//! The router tier: a stateless serve process that terminates client
//! connections and forwards every stream-owning op to the node that owns
//! the key.
//!
//! A router speaks the exact client protocol on its listener — the same
//! frames, the same reply order — and consults the federated
//! [`ClusterMap`] built from `--nodes` to pick an owner per key. Three
//! forwarding shapes cover the protocol:
//!
//! * **Request/reply ops** (`ingest`, `bind`): forwarded synchronously on a
//!   pooled per-node connection, one in flight per node at a time. Ingest is
//!   re-encoded as a *binary* frame regardless of how the client sent it
//!   (the cheap encoding for the hot path); the node's reply line is
//!   relayed to the client **verbatim** — raw bytes, never re-serialized —
//!   so a client cannot distinguish a router from a node by reply bytes.
//! * **`stats`**: forwarded to every node; the replies are merged under a
//!   `nodes` array next to the router's own placement and forwarding
//!   counters.
//! * **`subscribe`**: proxied over a *dedicated* upstream connection per
//!   subscription. After the ack, everything the node sends on it is event
//!   traffic for that one stream, so a relay thread copies whole raw frames
//!   (binary or NDJSON, sniffed by first byte) into the client's outbound
//!   queue untouched — byte-identity for proxied releases is structural,
//!   not re-encoded. WAL catch-up (`from:`) rides the same path: the node
//!   serves it, the router just relays.
//!
//! **Failure semantics.** A dead node surfaces as explicit per-key
//! unavailability: request forwards reply `{"ok":false,"error":"node
//! <addr> unavailable..."}` and bump the key's counter in the router's
//! `stats`; a proxied subscription emits a final
//! `{"event":"unavailable","stream":...}` line and ends. The router itself
//! holds no stream state, so a restarted node rejoins by replaying its own
//! WAL and the router reconnects on the next forward — no rebalancing, no
//! handoff.

use crate::config::ServeConfig;
use crate::fanout::{json_line, OutBytes, SubscriberRegistry, SubscriberSink};
use crate::placement::ClusterMap;
use crate::protocol::{error_reply, CatchUp, Request};
use bfly_common::frame::BINARY_MAGIC;
use bfly_common::{BinaryFrame, FrameMode, ItemSet, Json};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A node slower than this on a forwarded request is treated as dead for
/// that request (the pooled connection is dropped and rebuilt next time).
const FORWARD_TIMEOUT: Duration = Duration::from_secs(5);
/// How often a subscription relay wakes from a blocked upstream read to
/// poll its stop conditions.
const RELAY_POLL: Duration = Duration::from_millis(100);

/// `magic + op + payload_len` — the fixed prefix of a binary frame (the
/// layout documented in [`bfly_common::frame`]).
const BINARY_HEADER_LEN: usize = 6;

/// Scans a byte stream into *whole raw frames* without decoding them: a
/// frame starting with [`BINARY_MAGIC`] spans `6 + payload_len` bytes, any
/// other first byte starts an NDJSON line ending at `\n`. This is what lets
/// the router relay node traffic verbatim — the bytes that arrive are the
/// bytes that leave.
struct RawFrameScanner {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl RawFrameScanner {
    fn new(stream: TcpStream) -> RawFrameScanner {
        RawFrameScanner {
            stream,
            buf: Vec::new(),
        }
    }

    /// The next whole frame's raw bytes; `Ok(None)` on clean EOF. A
    /// `WouldBlock`/`TimedOut` read error is a poll tick — buffered partial
    /// frame state is preserved across it.
    fn next_raw(&mut self) -> std::io::Result<Option<Vec<u8>>> {
        loop {
            if let Some(frame) = self.take_frame() {
                return Ok(Some(frame));
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return if self.buf.is_empty() {
                    Ok(None)
                } else {
                    Err(std::io::ErrorKind::UnexpectedEof.into())
                };
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }

    fn take_frame(&mut self) -> Option<Vec<u8>> {
        let first = *self.buf.first()?;
        let end = if first == BINARY_MAGIC {
            if self.buf.len() < BINARY_HEADER_LEN {
                return None;
            }
            let len =
                u32::from_le_bytes(self.buf[2..BINARY_HEADER_LEN].try_into().expect("4 bytes"))
                    as usize;
            let total = BINARY_HEADER_LEN + len;
            if self.buf.len() < total {
                return None;
            }
            total
        } else {
            self.buf.iter().position(|&b| b == b'\n')? + 1
        };
        Some(self.buf.drain(..end).collect())
    }
}

/// One pooled request/reply connection to a node.
struct Upstream {
    scanner: RawFrameScanner,
}

impl Upstream {
    fn connect(addr: SocketAddr) -> std::io::Result<Upstream> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(FORWARD_TIMEOUT))?;
        stream.set_write_timeout(Some(FORWARD_TIMEOUT))?;
        Ok(Upstream {
            scanner: RawFrameScanner::new(stream),
        })
    }

    /// Write one request frame and read one raw reply frame. Every request
    /// op replies with exactly one frame, so this is the whole per-node
    /// protocol; a timeout is an error (the caller drops the connection).
    fn round_trip(&mut self, request: &[u8]) -> std::io::Result<Vec<u8>> {
        self.scanner.stream.write_all(request)?;
        match self.scanner.next_raw() {
            Ok(Some(frame)) => Ok(frame),
            Ok(None) => Err(std::io::ErrorKind::UnexpectedEof.into()),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                Err(std::io::ErrorKind::TimedOut.into())
            }
            Err(e) => Err(e),
        }
    }
}

/// One node as the router sees it: its address, the pooled request
/// connection, and per-node forwarding counters.
struct NodeLink {
    addr: SocketAddr,
    /// `None` until first use and after any error; rebuilt on demand. The
    /// mutex serializes requests per node — forwarding is synchronous per
    /// client connection, and per-node ordering rides on it.
    conn: Mutex<Option<Upstream>>,
    /// Requests forwarded (including failed attempts).
    forwarded: AtomicU64,
    /// Transactions the node acknowledged, summed from its ingest replies —
    /// the router's backpressure ledger per node.
    accepted: AtomicU64,
    /// Transactions the node shed (its ingress queue was full).
    shed: AtomicU64,
    /// Forwards that failed outright (connect/write/read error).
    errors: AtomicU64,
}

/// The routing half of a serve process (see the module docs).
pub(crate) struct RouterCore {
    pub(crate) map: ClusterMap,
    links: Vec<NodeLink>,
    /// Set at shutdown; subscription relays poll it.
    stop: Arc<AtomicBool>,
    /// Set once nodes have been told to shut down: relays then drain to
    /// upstream EOF (so final releases and `closed` events reach
    /// subscribers) instead of exiting at the next poll tick.
    drain_mode: Arc<AtomicBool>,
    /// One guard so a pile-up of `shutdown` requests forwards once.
    shutdown_forwarded: AtomicBool,
    /// Live subscription relays, joined by [`crate::Server::join`].
    relays: Mutex<Vec<Relay>>,
    /// Per-key unavailability: how many times each stream key hit a dead
    /// owner — the explicit failure surface the `stats` reply exposes.
    unavailable: Arc<Mutex<BTreeMap<String, u64>>>,
}

struct Relay {
    conn_id: u64,
    stream: String,
    /// Stops this one relay (a re-subscribe for the same `(conn, stream)`
    /// replaces it).
    stop: Arc<AtomicBool>,
    handle: JoinHandle<()>,
}

impl RouterCore {
    /// Build the routing core from a validated router config: the federated
    /// map over `cfg.nodes`, `cfg.shards` shards per node.
    pub(crate) fn new(cfg: &ServeConfig) -> RouterCore {
        RouterCore {
            map: ClusterMap::federated(1, cfg.nodes.clone(), cfg.shards),
            links: cfg
                .nodes
                .iter()
                .map(|&addr| NodeLink {
                    addr,
                    conn: Mutex::new(None),
                    forwarded: AtomicU64::new(0),
                    accepted: AtomicU64::new(0),
                    shed: AtomicU64::new(0),
                    errors: AtomicU64::new(0),
                })
                .collect(),
            stop: Arc::new(AtomicBool::new(false)),
            drain_mode: Arc::new(AtomicBool::new(false)),
            shutdown_forwarded: AtomicBool::new(false),
            relays: Mutex::new(Vec::new()),
            unavailable: Arc::new(Mutex::new(BTreeMap::new())),
        }
    }

    /// Shutdown hook ([`crate::server::Shared::trigger_shutdown`]): wake the
    /// relays' poll loops.
    pub(crate) fn on_shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Forward one raw request frame to node `idx` and return the raw reply,
    /// retrying once on a fresh connection (the pooled one may have died
    /// idle).
    fn forward_raw(&self, idx: usize, request: &[u8]) -> std::io::Result<Vec<u8>> {
        let link = &self.links[idx];
        link.forwarded.fetch_add(1, Ordering::Relaxed);
        let mut conn = link.conn.lock().expect("node link poisoned");
        for last_try in [false, true] {
            if conn.is_none() {
                *conn = Some(Upstream::connect(link.addr)?);
            }
            match conn.as_mut().expect("just connected").round_trip(request) {
                Ok(reply) => return Ok(reply),
                Err(e) => {
                    *conn = None;
                    if last_try {
                        return Err(e);
                    }
                }
            }
        }
        unreachable!("the retry loop always returns")
    }

    /// Record a failed forward for `stream` against node `idx` and build
    /// the client-facing error reply.
    fn note_unavailable(&self, idx: usize, stream: &str, err: &std::io::Error) -> Json {
        self.links[idx].errors.fetch_add(1, Ordering::Relaxed);
        *self
            .unavailable
            .lock()
            .expect("unavailable poisoned")
            .entry(stream.to_string())
            .or_insert(0) += 1;
        error_reply(&format!(
            "node {} unavailable for stream {stream:?}: {err}",
            self.links[idx].addr
        ))
    }

    /// Forward an ingest to the owning node as a binary frame and relay the
    /// node's reply line verbatim. The reply is also parsed (a copy — the
    /// relayed bytes are untouched) to keep the per-node accepted/shed
    /// ledger.
    pub(crate) fn ingest(&self, stream: String, batch: Vec<ItemSet>) -> OutBytes {
        let owner = self.map.owner_of(&stream).node;
        let frame = BinaryFrame::Ingest {
            stream: stream.clone(),
            batch,
        }
        .encode();
        match self.forward_raw(owner, &frame) {
            Ok(reply) => {
                let link = &self.links[owner];
                if let Some(doc) = parse_line(&reply) {
                    for (field, counter) in [("accepted", &link.accepted), ("shed", &link.shed)] {
                        if let Some(n) = doc.get(field).and_then(Json::as_u64) {
                            counter.fetch_add(n, Ordering::Relaxed);
                        }
                    }
                }
                Arc::from(reply.into_boxed_slice())
            }
            Err(e) => json_line(&self.note_unavailable(owner, &stream, &e)),
        }
    }

    /// Forward a bind to the owning node and relay its reply verbatim.
    pub(crate) fn bind(&self, stream: String, defense: bfly_core::DefenseKind) -> OutBytes {
        let owner = self.map.owner_of(&stream).node;
        let req = json_line(
            &Request::Bind {
                stream: stream.clone(),
                defense,
            }
            .to_json(),
        );
        match self.forward_raw(owner, &req) {
            Ok(reply) => Arc::from(reply.into_boxed_slice()),
            Err(e) => json_line(&self.note_unavailable(owner, &stream, &e)),
        }
    }

    /// Forward `shutdown` to every node, once. Called *before* the router's
    /// own drain begins so relays enter drain mode and ride each node's
    /// final releases and `closed` events through to subscribers.
    pub(crate) fn shutdown_nodes(&self) {
        if self.shutdown_forwarded.swap(true, Ordering::SeqCst) {
            return;
        }
        self.drain_mode.store(true, Ordering::SeqCst);
        let req = json_line(&Request::Shutdown.to_json());
        for idx in 0..self.links.len() {
            if let Err(e) = self.forward_raw(idx, &req) {
                // A node that is already gone cannot drain; its subscribers
                // saw `unavailable` when it died.
                let _ = e;
                self.links[idx].errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The merged `stats` reply: every node's own stats document under
    /// `nodes`, plus the router's placement shape, per-node forwarding
    /// ledger, and per-key unavailability counters.
    pub(crate) fn stats_json(
        &self,
        draining: bool,
        io_name: &str,
        uptime_ms: u64,
        subscribers: u64,
    ) -> Json {
        let req = json_line(&Request::Stats.to_json());
        let nodes: Vec<Json> = (0..self.links.len())
            .map(|idx| {
                let addr = Json::Str(self.links[idx].addr.to_string());
                match self
                    .forward_raw(idx, &req)
                    .ok()
                    .as_deref()
                    .and_then(parse_line)
                {
                    Some(doc) => {
                        Json::obj([("addr", addr), ("ok", Json::Bool(true)), ("stats", doc)])
                    }
                    None => {
                        self.links[idx].errors.fetch_add(1, Ordering::Relaxed);
                        Json::obj([
                            ("addr", addr),
                            ("ok", Json::Bool(false)),
                            ("error", Json::from("unavailable")),
                        ])
                    }
                }
            })
            .collect();
        let forward: Vec<Json> = self
            .links
            .iter()
            .map(|l| {
                Json::obj([
                    ("addr", Json::Str(l.addr.to_string())),
                    ("requests", Json::from(l.forwarded.load(Ordering::Relaxed))),
                    ("accepted", Json::from(l.accepted.load(Ordering::Relaxed))),
                    ("shed", Json::from(l.shed.load(Ordering::Relaxed))),
                    ("errors", Json::from(l.errors.load(Ordering::Relaxed))),
                ])
            })
            .collect();
        let unavailable = Json::Obj(
            self.unavailable
                .lock()
                .expect("unavailable poisoned")
                .iter()
                .map(|(k, &n)| (k.clone(), Json::from(n)))
                .collect(),
        );
        Json::obj([
            ("ok", Json::Bool(true)),
            ("role", Json::from("router")),
            (
                "cluster",
                Json::obj([
                    ("version", Json::from(self.map.version())),
                    ("nodes", Json::from(self.map.node_count() as u64)),
                    (
                        "shards_per_node",
                        Json::from(self.map.shards_per_node() as u64),
                    ),
                    ("slots", Json::from(self.map.slots() as u64)),
                ]),
            ),
            ("nodes", Json::Arr(nodes)),
            ("forward", Json::Arr(forward)),
            ("unavailable", unavailable),
            ("subscribers", Json::from(subscribers)),
            ("draining", Json::Bool(draining)),
            ("io", Json::from(io_name)),
            ("uptime_ms", Json::from(uptime_ms)),
        ])
    }

    /// Proxy a subscription: open a dedicated upstream connection to the
    /// owner, forward the subscribe (including any `from:` catch-up), relay
    /// the raw ack as this request's reply, and — on success — spawn a relay
    /// thread that copies every subsequent raw frame into the client's
    /// outbound queue. Returns `false` only when the *client* connection
    /// died.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn subscribe(
        &self,
        conn_id: u64,
        registry: &Arc<SubscriberRegistry>,
        stream: String,
        frame: FrameMode,
        from: Option<CatchUp>,
        reply: &mut dyn FnMut(OutBytes) -> bool,
        make_sink: &mut dyn FnMut() -> SubscriberSink,
    ) -> bool {
        let owner = self.map.owner_of(&stream).node;
        let addr = self
            .map
            .node_addr(owner)
            .expect("router maps are federated");
        let mut up = match Upstream::connect(addr) {
            Ok(up) => up,
            Err(e) => return reply(json_line(&self.note_unavailable(owner, &stream, &e))),
        };
        let req = Request::Subscribe {
            stream: stream.clone(),
            frame,
            from,
        };
        let ack = match up.round_trip(&json_line(&req.to_json())) {
            Ok(ack) => ack,
            Err(e) => return reply(json_line(&self.note_unavailable(owner, &stream, &e))),
        };
        let acked = parse_line(&ack)
            .and_then(|doc| doc.get("ok").and_then(Json::as_bool))
            .unwrap_or(false);
        if !acked {
            // The node refused (e.g. catch-up without a WAL there): relay
            // its error verbatim and keep nothing open.
            return reply(Arc::from(ack.into_boxed_slice()));
        }
        let SubscriberSink::Channel(tx) = make_sink() else {
            // Unreachable behind config validation (routers are blocking-io
            // only), but a graceful reply beats a poisoned connection.
            return reply(json_line(&error_reply(
                "router subscriptions require blocking io",
            )));
        };
        // Register for the connection-lifecycle bookkeeping the node path
        // gets from fan-out: the shutdown linger in the connection handler
        // and `unsubscribe_conn` cleanup both key on the registry. Nothing
        // publishes through this entry — the relay owns event delivery.
        registry.subscribe(&stream, conn_id, frame, SubscriberSink::Channel(tx.clone()));
        // Relay the raw ack first so the reply precedes every event.
        if !reply(Arc::from(ack.into_boxed_slice())) {
            return false;
        }
        self.spawn_relay(conn_id, registry.clone(), stream, up, tx);
        true
    }

    fn spawn_relay(
        &self,
        conn_id: u64,
        registry: Arc<SubscriberRegistry>,
        stream: String,
        up: Upstream,
        tx: std::sync::mpsc::SyncSender<OutBytes>,
    ) {
        let mut relays = self.relays.lock().expect("relays poisoned");
        // A re-subscribe for the same (conn, stream) replaces the relay the
        // way it replaces the registry sink; finished relays are pruned
        // opportunistically.
        for r in relays.iter() {
            if r.conn_id == conn_id && r.stream == stream {
                r.stop.store(true, Ordering::SeqCst);
            }
        }
        relays.retain(|r| !r.handle.is_finished());
        let relay_stop = Arc::new(AtomicBool::new(false));
        let ctx = RelayCtx {
            stop: relay_stop.clone(),
            global_stop: self.stop.clone(),
            drain_mode: self.drain_mode.clone(),
            registry,
            unavailable: self.unavailable.clone(),
        };
        let key = stream.clone();
        let handle = std::thread::Builder::new()
            .name(format!("bfly-relay-{conn_id}"))
            .spawn(move || relay_loop(conn_id, &key, up, tx, ctx))
            .expect("spawn subscription relay");
        relays.push(Relay {
            conn_id,
            stream,
            stop: relay_stop,
            handle,
        });
    }

    /// Join every relay thread (after [`RouterCore::on_shutdown`]).
    pub(crate) fn join_relays(&self) {
        let relays: Vec<Relay> = std::mem::take(&mut *self.relays.lock().expect("relays poisoned"));
        for r in relays {
            let _ = r.handle.join();
        }
    }
}

/// Everything a relay thread polls besides its upstream socket.
struct RelayCtx {
    stop: Arc<AtomicBool>,
    global_stop: Arc<AtomicBool>,
    drain_mode: Arc<AtomicBool>,
    registry: Arc<SubscriberRegistry>,
    unavailable: Arc<Mutex<BTreeMap<String, u64>>>,
}

/// Copy raw frames from the owning node into the client's outbound queue
/// until the upstream closes (node drain), the client goes away, or the
/// router stops. A node that dies mid-subscription gets the subscriber an
/// explicit `unavailable` event — never a silent stall.
fn relay_loop(
    conn_id: u64,
    stream_key: &str,
    mut up: Upstream,
    tx: std::sync::mpsc::SyncSender<OutBytes>,
    ctx: RelayCtx,
) {
    let _ = up.scanner.stream.set_read_timeout(Some(RELAY_POLL));
    loop {
        if ctx.stop.load(Ordering::SeqCst) {
            return; // replaced by a re-subscribe
        }
        if !ctx.registry.has_conn(conn_id) && !ctx.global_stop.load(Ordering::SeqCst) {
            return; // the client connection is gone
        }
        if ctx.global_stop.load(Ordering::SeqCst) && !ctx.drain_mode.load(Ordering::SeqCst) {
            // The router is stopping without a node drain (programmatic
            // join): there are no final events to wait for.
            return;
        }
        match up.scanner.next_raw() {
            Ok(Some(frame)) => {
                // SyncSender::send blocks when the client's pump is behind —
                // per-subscription backpressure, same as a node's fan-out
                // budget. A send error means the pump is gone.
                if tx.send(Arc::from(frame.into_boxed_slice())).is_err() {
                    return;
                }
            }
            Ok(None) => return, // node drained and closed: relay complete
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue; // poll tick
            }
            Err(_) => {
                // The owner died under the subscription: surface it as an
                // explicit event, not a hang.
                *ctx.unavailable
                    .lock()
                    .expect("unavailable poisoned")
                    .entry(stream_key.to_string())
                    .or_insert(0) += 1;
                let _ = tx.send(json_line(&Json::obj([
                    ("event", Json::from("unavailable")),
                    ("stream", Json::from(stream_key)),
                ])));
                return;
            }
        }
    }
}

/// Parse one raw NDJSON reply line (a copy for accounting — relayed bytes
/// are never rebuilt from this).
fn parse_line(raw: &[u8]) -> Option<Json> {
    Json::parse(std::str::from_utf8(raw).ok()?.trim_end()).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_scanner_splits_mixed_traffic() {
        // Exercise the frame-splitting logic on a buffer directly: a JSON
        // line, a binary frame, then a partial tail.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"{\"ok\":true}\n");
        let bin = BinaryFrame::Ingest {
            stream: "t0".into(),
            batch: vec![ItemSet::from_ids([1, 2])],
        }
        .encode();
        buf.extend_from_slice(&bin);
        buf.extend_from_slice(&bin[..3]); // partial header
        let mut sc = RawFrameScanner {
            stream: match std::net::TcpListener::bind("127.0.0.1:0") {
                Ok(l) => {
                    let addr = l.local_addr().unwrap();
                    let s = TcpStream::connect(addr).unwrap();
                    let _ = l.accept().unwrap();
                    s
                }
                Err(e) => panic!("bind: {e}"),
            },
            buf,
        };
        assert_eq!(sc.take_frame().unwrap(), b"{\"ok\":true}\n");
        assert_eq!(sc.take_frame().unwrap(), bin);
        assert_eq!(sc.take_frame(), None, "partial frame must wait for bytes");
        assert_eq!(sc.buf, &bin[..3]);
    }
}
