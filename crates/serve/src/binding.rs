//! Per-stream defense bindings: the `bind` wire op's state.
//!
//! A client may bind one stream key to a non-default [`DefenseKind`] —
//! *before* that stream's first accepted ingest. Binding is a creation-time
//! property: a pipeline's defense cannot change mid-stream (Butterfly's
//! republication cache, PrivBasis's window index, and suppression's ledger
//! all assume one defense owns the whole history), so a bind that arrives
//! after the stream's pipeline exists is rejected with an error naming the
//! conflict instead of silently applying to a suffix.
//!
//! Concurrency: the map is a single mutex shared by the connection handlers
//! (which record binds) and the shard workers (which consume them at
//! pipeline creation). Both touch it once per stream lifetime, not per
//! record, so contention is nil. If a bind and the stream's first ingest
//! race on different connections, whichever reaches the mutex first wins —
//! the same guarantee any first-write-wins registration has.

use bfly_core::DefenseKind;
use std::collections::{HashMap, HashSet};
use std::sync::Mutex;

#[derive(Default)]
struct Inner {
    /// Keys bound to a non-default defense, not yet materialized.
    overrides: HashMap<String, DefenseKind>,
    /// Keys whose pipeline already exists (bind window closed).
    active: HashSet<String>,
}

/// Registry of per-stream defense overrides (see module docs).
#[derive(Default)]
pub(crate) struct DefenseBindings {
    inner: Mutex<Inner>,
}

impl DefenseBindings {
    /// Record a bind for `key`. Errors if the stream is already active.
    pub(crate) fn bind(&self, key: &str, kind: DefenseKind) -> Result<(), String> {
        let mut inner = self.inner.lock().expect("bindings mutex");
        if inner.active.contains(key) {
            return Err(format!(
                "stream {key:?} is already active; bind must precede its first ingest"
            ));
        }
        inner.overrides.insert(key.to_string(), kind);
        Ok(())
    }

    /// Consume the override for `key` (if any) and close its bind window.
    /// Called by the shard worker exactly once, at pipeline creation.
    pub(crate) fn materialize(&self, key: &str) -> Option<DefenseKind> {
        let mut inner = self.inner.lock().expect("bindings mutex");
        inner.active.insert(key.to_string());
        inner.overrides.remove(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_applies_once_then_stream_is_sealed() {
        let b = DefenseBindings::default();
        b.bind("s", DefenseKind::PrivBasis).unwrap();
        assert_eq!(b.materialize("s"), Some(DefenseKind::PrivBasis));
        let err = b.bind("s", DefenseKind::Suppression).unwrap_err();
        assert!(err.contains("already active"), "got {err}");
        // Unbound keys materialize to the config default.
        assert_eq!(b.materialize("t"), None);
    }

    #[test]
    fn rebinding_before_first_ingest_takes_the_latest() {
        let b = DefenseBindings::default();
        b.bind("s", DefenseKind::PrivBasis).unwrap();
        b.bind("s", DefenseKind::Suppression).unwrap();
        assert_eq!(b.materialize("s"), Some(DefenseKind::Suppression));
    }
}
