//! Placement: the one key→owner mapping every process in a deployment
//! shares.
//!
//! A deployment is N nodes × M shards each, flattened into `N·M` *slots*.
//! A stream key hashes to a slot with the workspace FNV-1a
//! ([`bfly_common::hash::fnv1a`]), and the slot decomposes into an owner:
//!
//! ```text
//! slot  = fnv1a(key) % (N · M)
//! node  = slot / M
//! shard = slot % M        (the shard index *on that node*)
//! ```
//!
//! The pre-federation single-process service is the degenerate `N = 1` map:
//! `slot = fnv1a(key) % M`, `node = 0`, `shard = slot` — byte-identical to
//! the historical `fnv1a(key) % shards` routing, which the serve_net suite
//! pins. The in-process path and the router both route through this module,
//! so there is exactly one placement function in the codebase.
//!
//! A node behind a router still routes *locally* with its own degenerate
//! map over its local shard count. That is deliberate: which local shard a
//! key lands on affects only which worker thread owns it — a stream's
//! release bytes depend on (config, seed, key, record order), none of which
//! mention the shard — so nodes need no knowledge of the cluster to produce
//! byte-identical releases, and a key's releases survive resharding.
//!
//! The map is versioned. This PR ships static maps (the version changes
//! only when the node list changes between process restarts); the version
//! field is the seam a future rebalance protocol needs — a forwarded frame
//! tagged with a stale version is the signal to refresh, not misroute.

use bfly_common::hash::fnv1a;
use std::net::SocketAddr;

/// Where one key lives: which node, and which shard on that node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Owner {
    /// Index into the map's node list.
    pub node: usize,
    /// Shard index local to that node.
    pub shard: usize,
}

/// A versioned, immutable view of the deployment: N nodes × M shards each.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterMap {
    /// Monotone map version; bumps when the node list changes.
    version: u64,
    /// Node addresses in slot order. Empty for the degenerate in-process
    /// map (node 0 is "this process").
    nodes: Vec<SocketAddr>,
    /// Shards per node (M). Every node runs the same count — placement
    /// must be computable from the map alone, without asking each node.
    shards_per_node: usize,
}

impl ClusterMap {
    /// The degenerate one-node map: `M` shards in this process. Its
    /// [`ClusterMap::owner_of`] is exactly the historical
    /// `fnv1a(key) % shards` routing.
    pub fn single(shards: usize) -> ClusterMap {
        assert!(shards > 0, "a cluster map needs at least one shard");
        ClusterMap {
            version: 1,
            nodes: Vec::new(),
            shards_per_node: shards,
        }
    }

    /// A federated map over `nodes` (in slot order), `shards_per_node`
    /// shards each.
    pub fn federated(version: u64, nodes: Vec<SocketAddr>, shards_per_node: usize) -> ClusterMap {
        assert!(!nodes.is_empty(), "a federated map needs at least one node");
        assert!(
            shards_per_node > 0,
            "a cluster map needs at least one shard"
        );
        ClusterMap {
            version,
            nodes,
            shards_per_node,
        }
    }

    /// The map version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of nodes (1 for the degenerate map).
    pub fn node_count(&self) -> usize {
        self.nodes.len().max(1)
    }

    /// Shards per node (M).
    pub fn shards_per_node(&self) -> usize {
        self.shards_per_node
    }

    /// Total slots (N·M).
    pub fn slots(&self) -> usize {
        self.node_count() * self.shards_per_node
    }

    /// The address of node `idx` (None on the degenerate in-process map).
    pub fn node_addr(&self, idx: usize) -> Option<SocketAddr> {
        self.nodes.get(idx).copied()
    }

    /// The node addresses in slot order.
    pub fn node_addrs(&self) -> &[SocketAddr] {
        &self.nodes
    }

    /// Hash a key to its slot.
    pub fn slot_of(&self, key: &str) -> usize {
        (fnv1a(key) % self.slots() as u64) as usize
    }

    /// Hash a key to its owner. On the degenerate map `node` is always 0
    /// and `shard` is `fnv1a(key) % shards` — the pinned historical path.
    pub fn owner_of(&self, key: &str) -> Owner {
        let slot = self.slot_of(key);
        Owner {
            node: slot / self.shards_per_node,
            shard: slot % self.shards_per_node,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<SocketAddr> {
        (0..n)
            .map(|i| format!("127.0.0.1:{}", 7000 + i).parse().unwrap())
            .collect()
    }

    /// The degenerate map must be byte-identical to the historical routing:
    /// this is what lets the single-process server route through placement
    /// without moving a single key.
    #[test]
    fn single_node_map_is_the_legacy_mod_shards_routing() {
        for shards in [1, 3, 4, 7] {
            let map = ClusterMap::single(shards);
            for i in 0..256 {
                let key = format!("t{i}");
                let owner = map.owner_of(&key);
                assert_eq!(owner.node, 0);
                assert_eq!(owner.shard, (fnv1a(&key) % shards as u64) as usize, "{key}");
            }
        }
    }

    #[test]
    fn federated_owner_decomposes_the_slot() {
        let map = ClusterMap::federated(3, addrs(3), 4);
        assert_eq!(map.slots(), 12);
        assert_eq!(map.version(), 3);
        for i in 0..256 {
            let key = format!("stream-{i}");
            let slot = (fnv1a(&key) % 12) as usize;
            let owner = map.owner_of(&key);
            assert_eq!(owner.node, slot / 4);
            assert_eq!(owner.shard, slot % 4);
            assert!(map.node_addr(owner.node).is_some());
        }
    }

    #[test]
    fn every_node_owns_keys_under_uniform_hashing() {
        let map = ClusterMap::federated(1, addrs(4), 2);
        let mut per_node = vec![0usize; 4];
        for i in 0..256 {
            per_node[map.owner_of(&format!("t{i}")).node] += 1;
        }
        assert!(
            per_node.iter().all(|&n| n > 0),
            "a node got no keys: {per_node:?}"
        );
    }

    #[test]
    fn placement_is_stable_across_maps_with_the_same_shape() {
        let a = ClusterMap::federated(1, addrs(2), 4);
        let b = ClusterMap::federated(2, addrs(2), 4);
        for i in 0..64 {
            let key = format!("t{i}");
            assert_eq!(a.owner_of(&key), b.owner_of(&key));
        }
    }
}
