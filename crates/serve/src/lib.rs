//! `bfly_serve`: a sharded multi-tenant stream service over the Butterfly
//! output-privacy pipeline.
//!
//! The batch CLI (`butterfly protect`) runs one pipeline over one file.
//! This crate runs *many* pipelines behind one TCP listener: clients tag
//! each transaction with a stream key (a tenant), keys are hashed onto a
//! fixed set of shard worker threads, each key gets its own independently
//! seeded [`bfly_core::StreamPipeline`], and every sanitized window release
//! fans out to the key's subscriber connections.
//!
//! Design invariants, in the order they matter:
//!
//! 1. **Output privacy is preserved per tenant.** Each stream key owns a
//!    full pipeline (window, miner, publisher) with a key-derived noise
//!    seed; no state, and in particular no randomness, is shared across
//!    keys.
//! 2. **Determinism survives the network.** A stream's releases depend only
//!    on (config, seed, key, record order). The integration tests assert a
//!    TCP round trip is bit-identical to an in-process run.
//! 3. **Memory is bounded everywhere.** Bounded shard ingress queues (full
//!    ⇒ explicit `overloaded` shed replies), bounded per-connection
//!    outbound queues (full ⇒ slow subscriber disconnected), bounded frame
//!    sizes. Overload degrades loudly; it never buffers silently.
//! 4. **Shutdown drains.** Accepted records are processed, full windows
//!    with pending records are flushed, subscribers get `closed` events,
//!    every thread is joined.
//!
//! The crate layers as placement → node → router: [`placement`] is the one
//! key→owner mapping every process shares; the node layer wraps everything
//! that owns streams (shards, WAL, bindings) behind a facade; the router
//! layer is a stateless forwarding tier over N nodes speaking the same
//! client protocol (`serve --role router --nodes <addrs>`). A
//! single-process deployment is the degenerate one-node cluster,
//! byte-identical to the pre-federation wire.
//!
//! Wire protocol reference: [`protocol`]. Entry points: [`Server::bind`]
//! and [`Client::connect`].

mod binding;
pub mod client;
pub mod config;
mod fanout;
mod node;
pub mod placement;
pub mod protocol;
mod reactor;
mod router;
pub mod server;
mod shard;
pub mod stats;
pub mod wal;

pub use bfly_common::FrameMode;
pub use client::Client;
pub use config::{
    parse_node_list, IoMode, ServeConfig, ServeRole, WalConfig, WalSyncPolicy, REACTOR_SUPPORTED,
};
pub use placement::{ClusterMap, Owner};
pub use protocol::Request;
pub use server::Server;
pub use stats::{ReactorStats, ShardStats, WalStats};
