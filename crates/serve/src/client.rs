//! A minimal blocking client for the wire protocol — shared by the
//! integration tests, the loadgen harness, and anything else that talks to
//! a [`crate::Server`] without hand-rolling sockets.

use crate::protocol::Request;
use bfly_common::{Error, FrameReader, Json, Result};
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};

/// One connection to a Butterfly stream server.
pub struct Client {
    frames: FrameReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to `addr` (anything `ToSocketAddrs` accepts).
    ///
    /// # Errors
    /// Propagates connect/clone failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            frames: FrameReader::new(stream),
            writer,
        })
    }

    /// Send a request without waiting for its reply (pipelining). Callers
    /// owe one [`Client::next_line`] per send.
    ///
    /// # Errors
    /// Propagates socket write failures.
    pub fn send(&mut self, req: &Request) -> Result<()> {
        bfly_common::ndjson::write_frame(&mut self.writer, &req.to_json())?;
        Ok(())
    }

    /// Send one request and block for its reply line.
    ///
    /// # Errors
    /// Socket failures, or [`Error::Parse`] if the server hung up before
    /// replying.
    pub fn request(&mut self, req: &Request) -> Result<Json> {
        self.send(req)?;
        self.next_line()?
            .ok_or_else(|| Error::Parse("server closed before replying".into()))
    }

    /// Block for the next line from the server — a pipelined reply or, on a
    /// subscriber connection, an event. `None` means the server closed the
    /// connection.
    ///
    /// # Errors
    /// Socket failures or a malformed server line.
    pub fn next_line(&mut self) -> Result<Option<Json>> {
        self.frames.next_frame()
    }

    /// Half-close: no more requests will be sent, but lines can still be
    /// read. Lets a subscriber signal it is done ingesting while it drains
    /// events.
    ///
    /// # Errors
    /// Propagates the socket shutdown failure.
    pub fn close_write(&mut self) -> Result<()> {
        self.writer.flush()?;
        self.writer.shutdown(std::net::Shutdown::Write)?;
        Ok(())
    }
}
