//! A minimal blocking client for the wire protocol — shared by the
//! integration tests, the loadgen harness, and anything else that talks to
//! a [`crate::Server`] without hand-rolling sockets.

use crate::protocol::{binary_event_json, Request};
use bfly_common::{BinaryFrame, Error, Frame, FrameMode, FrameReader, Json, Result};
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};

/// One connection to a Butterfly stream server.
pub struct Client {
    frames: FrameReader<TcpStream>,
    writer: TcpStream,
    frame: FrameMode,
}

impl Client {
    /// Connect to `addr` (anything `ToSocketAddrs` accepts). Requests go
    /// out as NDJSON until [`Client::set_frame`] switches the encoding.
    ///
    /// # Errors
    /// Propagates connect/clone failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            frames: FrameReader::new(stream),
            writer,
            frame: FrameMode::Json,
        })
    }

    /// Choose the wire encoding for subsequent ingests. Negotiation is per
    /// frame (the server keys off the first byte), so this can change at
    /// any time; control requests stay NDJSON either way.
    pub fn set_frame(&mut self, mode: FrameMode) {
        self.frame = mode;
    }

    /// The current outbound frame encoding.
    pub fn frame(&self) -> FrameMode {
        self.frame
    }

    /// Send a request without waiting for its reply (pipelining). Callers
    /// owe one [`Client::next_line`] per send. In binary mode, `ingest`
    /// requests ship as binary frames; everything else is NDJSON.
    ///
    /// # Errors
    /// Propagates socket write failures.
    pub fn send(&mut self, req: &Request) -> Result<()> {
        if self.frame == FrameMode::Binary {
            if let Request::Ingest { stream, batch } = req {
                let frame = BinaryFrame::Ingest {
                    stream: stream.clone(),
                    batch: batch.clone(),
                };
                self.writer.write_all(&frame.encode())?;
                return Ok(());
            }
        }
        bfly_common::ndjson::write_frame(&mut self.writer, &req.to_json())?;
        Ok(())
    }

    /// Send one request and block for its reply line.
    ///
    /// # Errors
    /// Socket failures, or [`Error::Parse`] if the server hung up before
    /// replying.
    pub fn request(&mut self, req: &Request) -> Result<Json> {
        self.send(req)?;
        self.next_line()?
            .ok_or_else(|| Error::Parse("server closed before replying".into()))
    }

    /// Block for the next NDJSON line from the server — a pipelined reply
    /// or, on a JSON-mode subscriber connection, an event. `None` means the
    /// server closed the connection. A binary frame on the wire is an
    /// error; subscribers in binary mode read [`Client::next_event`].
    ///
    /// # Errors
    /// Socket failures or a malformed server line.
    pub fn next_line(&mut self) -> Result<Option<Json>> {
        self.frames.next_frame()
    }

    /// Block for the next frame of either encoding, surfaced as the event's
    /// JSON document — binary `release`/`release_delta` frames convert to
    /// the identical shape NDJSON subscribers see, so one consumer handles
    /// both negotiated modes. `None` means the server closed the
    /// connection.
    ///
    /// # Errors
    /// Socket failures, a malformed frame, or a binary frame that is not an
    /// event (the server never sends binary requests).
    pub fn next_event(&mut self) -> Result<Option<Json>> {
        match self.frames.next_any()? {
            None => Ok(None),
            Some(Frame::Json(v)) => Ok(Some(v)),
            Some(Frame::Binary(b)) => binary_event_json(&b)
                .map(Some)
                .ok_or_else(|| Error::Parse("unexpected binary request frame from server".into())),
        }
    }

    /// Half-close: no more requests will be sent, but lines can still be
    /// read. Lets a subscriber signal it is done ingesting while it drains
    /// events.
    ///
    /// # Errors
    /// Propagates the socket shutdown failure.
    pub fn close_write(&mut self) -> Result<()> {
        self.writer.flush()?;
        self.writer.shutdown(std::net::Shutdown::Write)?;
        Ok(())
    }
}
