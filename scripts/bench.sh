#!/usr/bin/env bash
# Benchmark gate for the parallel execution layer and the vertical
# support-counting engine.
#
# 1. parbench: each parallel stage timed at 1 worker and at the full worker
#    count in-process (median of $PARBENCH_REPS reps) with the pool's
#    chunk-dispatch telemetry per stage, plus the counting stages
#    (per-transaction scan vs. vertical tid-bitmap, the vertical path timed
#    both with the kernels forced to the scalar reference level and at the
#    host's detected SIMD level) and the release stage (batch ReleaseEngine
#    vs. incremental ReleaseEngine replaying the same high-overlap
#    sliding-window publication schedule, with DP warm-start counters).
#    Each invocation APPENDS one timestamped run entry to
#    BENCH_parallel.json, BENCH_support.json, and BENCH_release.json at the
#    repo root, so the perf trajectory across changes is preserved — never
#    overwritten.
# 2. loadgen: the bfly_serve stream service driven by concurrent TCP
#    clients across the I/O-engine × frame-encoding matrix at 1 shard
#    (blocking/json, reactor/json, reactor/binary), then reactor/binary at
#    4 shards for the scaling ratio, then the durability-tax matrix — the
#    unpaced 1-shard drive with the write-ahead log on at each sync policy
#    (never, interval:64, always) per engine, against the no-WAL rows as
#    baselines — then the federation matrix: a churning key population
#    driven direct at one node vs through a --role router over 1/2/4
#    nodes (router/1-node ÷ direct = routing tax, router/N ÷ router/1 =
#    placement spread); throughput + latency percentiles + shed rates
#    APPEND to BENCH_serve.json (entries record the host's core count —
#    shard and node scaling are only meaningful with >1 core).
# 3. defbench: the cross-defense evaluation matrix — every registered
#    PrivacyDefense published over the same mined stream and attacked by
#    the same inference engine; prig/pred/utility/attack-MSE plus publish
#    cost APPEND to BENCH_defense.json.
# 4. The dependency-free overhead + mining micro-benchmark harnesses, run
#    once at BFLY_THREADS=1 and once at the full worker count, for the
#    per-stage context numbers.
#
# Pass --quick to skip step 4.
set -euo pipefail
cd "$(dirname "$0")/.."

REPS="${PARBENCH_REPS:-5}"

echo "==> cargo build --release -p bfly-bench"
cargo build -q --release -p bfly-bench

echo "==> parbench (${REPS} reps, appends to BENCH_parallel.json + BENCH_support.json + BENCH_release.json)"
cargo run -q --release -p bfly-bench --bin parbench -- --reps "${REPS}" \
  --out BENCH_parallel.json --support-out BENCH_support.json \
  --release-out BENCH_release.json

echo "==> loadgen (io-engine × frame matrix + 4-shard scaling + WAL durability tax + router-vs-direct federation matrix, appends to BENCH_serve.json)"
cargo run -q --release -p bfly-bench --bin loadgen -- --out BENCH_serve.json

echo "==> defbench (cross-defense matrix, appends to BENCH_defense.json)"
cargo run -q --release -p bfly-bench --bin defbench -- --out BENCH_defense.json

if [[ "${1:-}" != "--quick" ]]; then
  for bench in overhead mining; do
    echo "==> bench ${bench} (1 thread)"
    BFLY_THREADS=1 cargo bench -q -p bfly-bench --bench "$bench"
    echo "==> bench ${bench} (all threads)"
    cargo bench -q -p bfly-bench --bench "$bench"
  done
fi

echo "==> appended run entries to BENCH_parallel.json, BENCH_support.json, BENCH_release.json, and BENCH_defense.json"
