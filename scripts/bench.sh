#!/usr/bin/env bash
# Benchmark gate for the parallel execution layer.
#
# 1. parbench: each parallel stage timed at 1 worker and at the full worker
#    count in-process (median of $PARBENCH_REPS reps), written with speedup
#    ratios to BENCH_parallel.json at the repo root.
# 2. The dependency-free overhead + mining micro-benchmark harnesses, run
#    once at BFLY_THREADS=1 and once at the full worker count, for the
#    per-stage context numbers.
#
# Pass --quick to skip step 2.
set -euo pipefail
cd "$(dirname "$0")/.."

REPS="${PARBENCH_REPS:-5}"

echo "==> cargo build --release -p bfly-bench"
cargo build -q --release -p bfly-bench

echo "==> parbench (${REPS} reps, writes BENCH_parallel.json)"
cargo run -q --release -p bfly-bench --bin parbench -- --reps "${REPS}" \
  --out BENCH_parallel.json

if [[ "${1:-}" != "--quick" ]]; then
  for bench in overhead mining; do
    echo "==> bench ${bench} (1 thread)"
    BFLY_THREADS=1 cargo bench -q -p bfly-bench --bench "$bench"
    echo "==> bench ${bench} (all threads)"
    cargo bench -q -p bfly-bench --bench "$bench"
  done
fi

echo "==> wrote BENCH_parallel.json"
