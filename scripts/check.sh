#!/usr/bin/env bash
# Pre-PR gate: formatting, lints, and the full test suite.
# Run from anywhere inside the repo; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --workspace --all-targets"
cargo build -q --workspace --all-targets

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> vertical-vs-scan differential tests"
cargo test -q --release --test vertical_support

echo "==> kernel differential tests (scalar vs unrolled vs simd, 1/2/8 threads)"
cargo test -q --release --test kernel_differential

echo "==> incremental-vs-batch release engine differential tests"
cargo test -q --release --test release_engine

echo "==> crash-recovery differential (SIGKILL mid-stream, restart on the same --wal-dir, byte-identical catch-up at 1/2/8 threads)"
cargo test -q --release --test wal_recovery

echo "==> federation differential (router over 2 nodes, kill one, survivor + WAL-rejoin byte-identity)"
cargo test -q --release --test federation

echo "==> parbench --quick smoke (chunk telemetry + kernel column sanity)"
PARBENCH_LOG=target/parbench.smoke.log
cargo run -q --release -p bfly-bench --bin parbench -- --quick \
  --out target/BENCH_parallel.smoke.json \
  --support-out target/BENCH_support.smoke.json \
  --release-out target/BENCH_release.smoke.json | tee "$PARBENCH_LOG"
# Every parallel stage must report a non-empty dispatch (chunks NxM over K
# items), and the counting stages must report both vertical columns.
if grep -q 'chunks 0x0 over 0 items' "$PARBENCH_LOG"; then
  echo "a parbench stage recorded an empty dispatch"; exit 1
fi
grep -q 'vertical(scalar)' "$PARBENCH_LOG" \
  || { echo "parbench counting stages lost the scalar-kernel baseline column"; exit 1; }
grep -Eq 'chunks [0-9]+x[0-9]+ over [0-9]+ items on [0-9]+ workers' "$PARBENCH_LOG" \
  || { echo "parbench stages lost the chunk telemetry"; exit 1; }

echo "==> serve smoke (reactor server, both frame modes, delta wire, mid-stream subscriber, WAL on)"
cargo build -q --release
PORT_FILE=target/serve.smoke.port
WAL_DIR=target/serve.smoke.wal
rm -f "$PORT_FILE"
rm -rf "$WAL_DIR"
target/release/butterfly serve --addr 127.0.0.1:0 --port-file "$PORT_FILE" \
  --window 200 --min-support 8 --vulnerable 3 --epsilon 0.05 --every 40 \
  --snapshot-every 4 --io reactor --wal-dir "$WAL_DIR" --wal-sync interval:64 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
  [[ -s "$PORT_FILE" ]] && break
  sleep 0.1
done
[[ -s "$PORT_FILE" ]] || { echo "server never wrote its port file"; exit 1; }
# First burst drives the legacy NDJSON wire; its releases publish for every
# key, so the second burst's watcher joins stream t0 mid-flight and must
# reconstruct its sanitized state from the next full snapshot plus the
# release_delta events after it (loadgen's watcher dies on any divergence).
# The second burst ingests and watches over binary frames, so one reactor
# process has served both encodings before the drain.
cargo run -q --release -p bfly-bench --bin loadgen -- --quick \
  --addr "$(cat "$PORT_FILE")" --frame json --out target/BENCH_serve.smoke.json
WATCH_LOG=target/serve.smoke.watch.log
cargo run -q --release -p bfly-bench --bin loadgen -- --quick \
  --addr "$(cat "$PORT_FILE")" --frame binary --watch t0 --shutdown \
  --out target/BENCH_serve.smoke.json | tee "$WATCH_LOG"
grep -q 'watch t0 (binary): synced=true' "$WATCH_LOG" \
  || { echo "mid-stream watcher never reconstructed stream t0"; exit 1; }
wait "$SERVE_PID"   # exits 0 only after a clean drain
trap - EXIT
# The drained log must replay: a restart on the same --wal-dir only comes
# up if replay re-executes every logged publication byte-for-byte, and the
# recovered server must take fresh load before draining clean again.
rm -f "$PORT_FILE"
target/release/butterfly serve --addr 127.0.0.1:0 --port-file "$PORT_FILE" \
  --window 200 --min-support 8 --vulnerable 3 --epsilon 0.05 --every 40 \
  --snapshot-every 4 --io reactor --wal-dir "$WAL_DIR" --wal-sync interval:64 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
  [[ -s "$PORT_FILE" ]] && break
  sleep 0.1
done
[[ -s "$PORT_FILE" ]] || { echo "server never recovered from its own wal"; exit 1; }
cargo run -q --release -p bfly-bench --bin loadgen -- --quick --shutdown \
  --addr "$(cat "$PORT_FILE")" --frame binary --out target/BENCH_serve.smoke.json
wait "$SERVE_PID"
trap - EXIT

echo "==> federation smoke (router over 2 WAL nodes, kill one mid-run, survivor WAL differential, clean drain)"
FED_DIR=target/federation.smoke
rm -rf "$FED_DIR"
mkdir -p "$FED_DIR"
# Two identical cluster runs — one undisturbed, one with node B SIGKILLed
# mid-run — driven by the same paced single-client load through a router.
# Placement hashes keys, not connections, so node A owns the same streams
# in both runs; with nothing shed (asserted below) its write-ahead log must
# come out byte-identical: the survivor never notices the kill. Every child
# is waited on (or reaped by the trap on failure) — no leaked processes.
for RUN in undisturbed kill; do
  for N in a b; do
    rm -f "$FED_DIR/$N.port"
    target/release/butterfly serve --addr 127.0.0.1:0 --port-file "$FED_DIR/$N.port" \
      --window 200 --min-support 8 --vulnerable 3 --epsilon 0.05 --every 40 \
      --shards 2 --wal-dir "$FED_DIR/$RUN-wal-$N" --wal-sync interval:64 &
    if [[ "$N" == a ]]; then NODE_A=$!; else NODE_B=$!; fi
  done
  trap 'kill -9 "$NODE_A" "$NODE_B" 2>/dev/null || true' EXIT
  for _ in $(seq 1 100); do
    [[ -s "$FED_DIR/a.port" && -s "$FED_DIR/b.port" ]] && break
    sleep 0.1
  done
  [[ -s "$FED_DIR/a.port" && -s "$FED_DIR/b.port" ]] \
    || { echo "federation nodes never came up"; exit 1; }
  rm -f "$FED_DIR/r.port"
  target/release/butterfly serve --addr 127.0.0.1:0 --port-file "$FED_DIR/r.port" \
    --window 200 --min-support 8 --vulnerable 3 --epsilon 0.05 --every 40 \
    --shards 2 --role router \
    --nodes "$(cat "$FED_DIR/a.port"),$(cat "$FED_DIR/b.port")" &
  ROUTER_PID=$!
  trap 'kill -9 "$NODE_A" "$NODE_B" "$ROUTER_PID" 2>/dev/null || true' EXIT
  for _ in $(seq 1 100); do
    [[ -s "$FED_DIR/r.port" ]] && break
    sleep 0.1
  done
  [[ -s "$FED_DIR/r.port" ]] || { echo "federation router never came up"; exit 1; }
  # Paced so the drive outlives the kill below; the pacing only adds client
  # sleeps, so both runs offer the identical record sequence.
  cargo run -q --release -p bfly-bench --bin loadgen -- \
    --clients 1 --requests 120 --batch 16 --pace 500 \
    --addr "$(cat "$FED_DIR/r.port")" --frame binary --shutdown \
    --out "$FED_DIR/bench.$RUN.json" &
  LOADGEN_PID=$!
  if [[ "$RUN" == kill ]]; then
    sleep 1.2
    kill -9 "$NODE_B" 2>/dev/null || true
  fi
  wait "$LOADGEN_PID" || { echo "loadgen through the router failed ($RUN)"; exit 1; }
  wait "$ROUTER_PID"    # exits 0 only after a clean drain
  wait "$NODE_A"        # drained by the shutdown the router forwarded
  if [[ "$RUN" == kill ]]; then
    wait "$NODE_B" 2>/dev/null || true   # SIGKILLed; reap the zombie
  else
    wait "$NODE_B"
  fi
  trap - EXIT
  grep -q '"shed":0' "$FED_DIR/bench.$RUN.json" \
    || { echo "federation smoke shed records ($RUN); differential would be vacuous"; exit 1; }
done
diff -rq "$FED_DIR/undisturbed-wal-a" "$FED_DIR/kill-wal-a" \
  || { echo "survivor node's release log diverged after the kill"; exit 1; }

echo "==> cross-defense smoke (CLI + serve + matrix, each registered defense)"
SMOKE_DIR=target/defense.smoke
mkdir -p "$SMOKE_DIR"
target/release/butterfly gen --profile webview1 --count 600 --seed 7 \
  --out "$SMOKE_DIR/stream.dat"
for DEFENSE in butterfly privbasis suppress; do
  # Same stream, same seed, twice: every defense must be bit-reproducible.
  for RUN in a b; do
    target/release/butterfly protect --input "$SMOKE_DIR/stream.dat" \
      --window 200 --min-support 8 --vulnerable 3 --epsilon 0.05 --delta 0.5 \
      --every 40 --seed 11 --defense "$DEFENSE" \
      --out "$SMOKE_DIR/$DEFENSE.$RUN.jsonl" 2>/dev/null
  done
  cmp "$SMOKE_DIR/$DEFENSE.a.jsonl" "$SMOKE_DIR/$DEFENSE.b.jsonl" \
    || { echo "defense $DEFENSE is not reproducible"; exit 1; }
  # Boot a server with the defense as the default and drive it once.
  PORT_FILE="$SMOKE_DIR/$DEFENSE.port"
  rm -f "$PORT_FILE"
  target/release/butterfly serve --addr 127.0.0.1:0 --port-file "$PORT_FILE" \
    --window 200 --min-support 8 --vulnerable 3 --epsilon 0.05 --every 40 \
    --defense "$DEFENSE" &
  SERVE_PID=$!
  trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
  for _ in $(seq 1 100); do
    [[ -s "$PORT_FILE" ]] && break
    sleep 0.1
  done
  [[ -s "$PORT_FILE" ]] || { echo "serve --defense $DEFENSE never came up"; exit 1; }
  cargo run -q --release -p bfly-bench --bin loadgen -- --quick --shutdown \
    --addr "$(cat "$PORT_FILE")" --out "$SMOKE_DIR/$DEFENSE.serve.json"
  wait "$SERVE_PID"
  trap - EXIT
done
# Unknown defenses must be rejected with the valid-name list, not applied.
if target/release/butterfly protect --input "$SMOKE_DIR/stream.dat" \
  --window 200 --min-support 8 --vulnerable 3 --epsilon 0.05 --delta 0.5 \
  --defense rot13 2>"$SMOKE_DIR/unknown.err"; then
  echo "unknown --defense was accepted"; exit 1
fi
grep -q 'unknown defense' "$SMOKE_DIR/unknown.err" \
  || { echo "unknown --defense error lacks the defense name list"; exit 1; }

echo "==> defense matrix smoke (scratch output under target/)"
cargo run -q --release -p bfly-bench --bin defbench -- --quick \
  --out target/BENCH_defense.smoke.json

echo "==> all checks passed"
