#!/usr/bin/env bash
# Pre-PR gate: formatting, lints, and the full test suite.
# Run from anywhere inside the repo; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --workspace --all-targets"
cargo build -q --workspace --all-targets

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> vertical-vs-scan differential tests"
cargo test -q --release --test vertical_support

echo "==> parbench smoke (1 rep, scratch output under target/)"
cargo run -q --release -p bfly-bench --bin parbench -- --reps 1 \
  --out target/BENCH_parallel.smoke.json \
  --support-out target/BENCH_support.smoke.json

echo "==> all checks passed"
