#!/usr/bin/env bash
# Pre-PR gate: formatting, lints, and the full test suite.
# Run from anywhere inside the repo; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --workspace --all-targets"
cargo build -q --workspace --all-targets

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> all checks passed"
