//! Prior Knowledge 3 in action: an adversary with side information, and the
//! variance compensation that restores the privacy floor.
//!
//! Run with `cargo run --release --example knowledge_compensation`.
//!
//! Scenario: the hospital also publishes exact counts of each single symptom
//! (a common "summary statistics" release). Those singletons become
//! *knowledge points*: the adversary substitutes the exact values into her
//! lattice sums, eroding the uncertainty Butterfly injected. The deployment
//! answers by widening the noise region just enough that the surviving
//! lattice members carry the whole privacy budget.

use butterfly_repro::butterfly::PrivacySpec;
use butterfly_repro::common::ItemSet;
use butterfly_repro::inference::knowledge::{
    pattern_variance_with_knowledge, required_sigma2, theoretical_prig, KnowledgeModel,
};

fn main() {
    let (c, k, delta) = (25u64, 5u64, 1.0f64);
    // The minimal inference lattice — the paper's worst case: p = a¬b with
    // X_a^{ab} = {a, ab}, only two members to hide behind.
    let base: ItemSet = "a".parse().unwrap();
    let span: ItemSet = "ab".parse().unwrap();
    let truth = 5; // worst-case vulnerable pattern: T(p) = K

    // ---- Naive deployment -------------------------------------------------
    let spec = PrivacySpec::new(c, k, 0.08, delta);
    println!(
        "naive contract: σ² = {:.1} (α = {}), floor δ = {delta}",
        spec.sigma2(),
        spec.alpha()
    );
    let none = KnowledgeModel::none();
    let prig = theoretical_prig(&base, &span, truth, spec.sigma2(), &none).unwrap();
    println!("  adversary w/o side info: prig(p) = {prig:.2}  (≥ δ ✓)");

    // The summary-statistics release makes every singleton exactly known.
    let leaky = KnowledgeModel::none().with_point("a".parse().unwrap(), 0.0);
    let prig_leaky = theoretical_prig(&base, &span, truth, spec.sigma2(), &leaky).unwrap();
    let var = pattern_variance_with_knowledge(&base, &span, spec.sigma2(), &leaky).unwrap();
    println!(
        "  adversary WITH exact singleton counts: pattern variance {var:.1}, prig(p) = {prig_leaky:.2}{}",
        if prig_leaky < delta { "  (< δ — floor broken!)" } else { "" }
    );

    // ---- Compensated deployment -------------------------------------------
    // The worst lattice has 2 members with 1 known: the survivor must carry
    // the whole privacy budget.
    let needed = required_sigma2(delta, k, 2, 1);
    let hardened = PrivacySpec::with_sigma2_floor(c, k, 0.08, delta, needed);
    println!(
        "\ncompensated contract: σ² = {:.1} (α = {}) — sized for 1 known member of a 2-member lattice",
        hardened.sigma2(),
        hardened.alpha()
    );
    let prig_fixed = theoretical_prig(&base, &span, truth, hardened.sigma2(), &leaky).unwrap();
    println!(
        "  adversary WITH side info vs hardened deployment: prig(p) = {prig_fixed:.2}  (≥ δ {})",
        if prig_fixed >= delta { "✓" } else { "✗" }
    );
    println!(
        "\nprecision cost of the compensation: pred bound rises from {:.4} to {:.4} (ε = 0.08)",
        spec.sigma2() / (c * c) as f64,
        hardened.sigma2() / (c * c) as f64
    );
}
