//! FP-stream over a long history: approximate frequency queries at multiple
//! time horizons from one pass, with tilted-time compression.
//!
//! Run with `cargo run --release --example fpstream_history`.

use butterfly_repro::common::Database;
use butterfly_repro::datagen::DatasetProfile;
use butterfly_repro::mining::{FpStream, FpStreamConfig};

fn main() {
    let config = FpStreamConfig {
        batch_size: 500,
        sigma: 0.05,
        epsilon: 0.01,
    };
    let mut fps = FpStream::new(config);

    // Keep the raw stream only to verify the estimates afterwards — the
    // miner itself never stores transactions beyond the current batch.
    let mut history = Vec::new();
    let mut stream = DatasetProfile::WebView1.source(3);
    for _ in 0..32 * 500 {
        let t = stream.next_transaction();
        history.push(t.clone());
        fps.push(t);
    }
    println!(
        "{} batches processed, {} patterns tracked (stream of {} records)\n",
        fps.batches(),
        fps.tracked_patterns(),
        history.len()
    );

    for horizon in [1u64, 4, 16, 32] {
        let answer = fps.frequent_over(horizon);
        let records = horizon as usize * config.batch_size;
        let db = Database::from_records(history[history.len() - records..].to_vec());
        println!(
            "last {horizon:>2} batches ({records:>5} records): {} patterns ≥ (σ−ε)·N",
            answer.len()
        );
        for e in answer.iter().take(5) {
            let truth = db.support(e.itemset());
            println!(
                "   {:<20} est {:>5}  true {:>5}  (under-count ≤ ε·N = {})",
                e.itemset().to_string(),
                e.support,
                truth,
                (config.epsilon * records as f64).ceil() as u64
            );
        }
    }
    println!(
        "\nthe tilted-time windows keep O(log B) slots per pattern, so the 32-batch \
         history costs barely more memory than a single batch."
    );
}
