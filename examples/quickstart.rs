//! Quickstart: protect a mined stream window with Butterfly.
//!
//! Run with `cargo run --example quickstart`.
//!
//! Pipeline: a synthetic clickstream (BMS-WebView-1 stand-in) slides through
//! a window; Moment maintains the closed frequent itemsets; the Butterfly
//! publisher sanitizes each window's supports under an (ε, δ) contract.

use butterfly_repro::butterfly::metrics;
use butterfly_repro::butterfly::{BiasScheme, PrivacySpec, Publisher, StreamPipeline};
use butterfly_repro::datagen::DatasetProfile;

fn main() {
    // The paper's default contract: C = 25, K = 5, ppr = ε/δ = 0.04, δ = 0.4.
    let spec = PrivacySpec::from_ppr(25, 5, 0.04, 0.4);
    println!(
        "contract: C={} K={} ε={:.4} δ={:.2}  →  noise width α={}, σ²={:.2}",
        spec.c(),
        spec.k(),
        spec.epsilon(),
        spec.delta(),
        spec.alpha(),
        spec.sigma2()
    );

    let scheme = BiasScheme::Hybrid {
        lambda: 0.4,
        gamma: 2,
    };
    let publisher = Publisher::new(spec, scheme, 42);
    let mut pipeline = StreamPipeline::new(2000, publisher);

    let mut stream = DatasetProfile::WebView1.source(7);
    let mut last = None;
    for _ in 0..2400 {
        if let Some(release) = pipeline.step(stream.next_transaction()) {
            last = Some(release);
        }
    }
    let release = last.expect("window filled");

    println!(
        "\nwindow Ds({}, 2000): {} closed frequent itemsets published\n",
        release.stream_len,
        release.release.len()
    );
    println!("{:<28} {:>8} {:>10}", "itemset", "true", "sanitized");
    for entry in release.release.iter().take(15) {
        println!(
            "{:<28} {:>8} {:>10}",
            entry.itemset().to_string(),
            entry.true_support,
            entry.sanitized
        );
    }
    if release.release.len() > 15 {
        println!("... ({} more)", release.release.len() - 15);
    }

    let m = metrics::window_metrics(&release.release, &[], None, 0.95);
    println!(
        "\nutility this window: avg_pred = {:.5} (≤ ε = {:.5}), ropp = {:.3}, rrpp = {:.3}",
        m.avg_pred,
        spec.epsilon(),
        m.ropp,
        m.rrpp
    );
}
