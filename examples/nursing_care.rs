//! The paper's running example, end to end: a nursing-care records stream
//! leaks a patient's symptoms through published mining output, and Butterfly
//! stops the inference.
//!
//! Run with `cargo run --example nursing_care`.
//!
//! Items a..d are observed symptoms; each record is one patient's chart.
//! The stream and supports are exactly those of the paper's Fig. 2/3 and
//! Examples 2–5.

use butterfly_repro::butterfly::{BiasScheme, PrivacySpec, Publisher};
use butterfly_repro::common::fixtures::{fig2_stream, fig2_window};
use butterfly_repro::common::{ItemSet, ItemsetId, Pattern};
use butterfly_repro::inference::adversary::estimate_pattern;
use butterfly_repro::inference::{find_inter_window_breaches, find_intra_window_breaches};
use butterfly_repro::mining::Apriori;

fn main() {
    let _stream = fig2_stream();
    let (c, k) = (4u64, 1u64); // Example 5's thresholds

    // ---- Without protection -------------------------------------------
    println!("== raw releases (no output-privacy protection) ==\n");
    let prev_db = fig2_window(11);
    let curr_db = fig2_window(12);
    let prev = Apriori::new(c).mine(&prev_db);
    let curr = Apriori::new(c).mine(&curr_db);

    println!(
        "Ds(11,8) publishes {} itemsets, Ds(12,8) publishes {}",
        prev.len(),
        curr.len()
    );

    let intra = find_intra_window_breaches(curr.as_map(), k);
    println!(
        "intra-window breaches in Ds(12,8) at K={k}: {}",
        intra.len()
    );

    let inter = find_inter_window_breaches(prev.as_map(), curr.as_map(), c, 1, k);
    println!("inter-window breaches at K={k}: {}", inter.len());
    for b in &inter {
        println!(
            "  BREACH: pattern {} has support {} — only {} patient(s) match \
             'has {}, lacks {}'",
            b.pattern,
            b.support,
            b.support,
            b.base,
            b.span.difference(&b.base)
        );
        println!("  (Alice knows Bob has those symptoms → Bob is identifiable, as in Example 1)");
    }

    // ---- With Butterfly -------------------------------------------------
    println!("\n== Butterfly-sanitized releases ==\n");
    // A contract scaled to this toy window: C=4, K=1, ε=0.2, δ=0.8.
    let spec = PrivacySpec::new(c, k, 0.2, 0.8);
    println!(
        "noise width α={}, σ²={:.2} per itemset",
        spec.alpha(),
        spec.sigma2()
    );
    let mut publisher = Publisher::new(spec, BiasScheme::Basic, 2024);
    let prev_release = publisher.publish(&prev);
    let curr_release = publisher.publish(&curr);

    let target: Pattern = "c¬a¬b".parse().unwrap();
    let truth = curr_db.pattern_support(&target);

    // The adversary re-runs her best inference on sanitized values: the
    // lattice sum over the sanitized supports, completing the missing abc
    // with the previous window's sanitized value.
    let mut view = curr_release.view();
    let prev_view = prev_release.view();
    let abc: ItemSet = "abc".parse().unwrap();
    if let Some(id) = ItemsetId::get(&abc) {
        if let Some(v) = prev_view.get(&id) {
            view.insert(id, *v);
        }
    }
    let estimate = estimate_pattern(&view, &"c".parse().unwrap(), &"abc".parse().unwrap())
        .unwrap()
        .expect("lattice complete with carried-over value");
    println!(
        "adversary's estimate of T({target}) from sanitized output: {estimate:+.1} \
         (truth: {truth})"
    );
    let rel_err = ((truth as f64 - estimate) / truth as f64).powi(2);
    println!(
        "squared relative error: {rel_err:.2} (privacy floor δ = {})",
        spec.delta()
    );
    println!(
        "\nthe derived value no longer pins a unique patient: the uncertainty of four \
         perturbed supports accumulates in the inference (§V-C.3)."
    );
}
