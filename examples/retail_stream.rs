//! A point-of-sale deployment: continuous sanitized publication over a
//! BMS-POS-style basket stream, comparing all four Butterfly variants.
//!
//! Run with `cargo run --release --example retail_stream`.
//!
//! For each scheme the example drives the same stream through the pipeline,
//! publishes every 100 records, measures utility per window, and prints the
//! averages — a miniature of the paper's Fig. 4/5 sweep.

use butterfly_repro::butterfly::metrics;
use butterfly_repro::butterfly::{BiasScheme, PrivacySpec, Publisher, StreamPipeline};
use butterfly_repro::datagen::DatasetProfile;

fn main() {
    let spec = PrivacySpec::from_ppr(25, 5, 0.4, 0.4);
    let window = 2000usize;
    let publish_every = 100usize;
    let windows_to_measure = 20usize;

    println!(
        "POS stream, window {window}, publish every {publish_every} records, \
         {windows_to_measure} windows per scheme"
    );
    println!(
        "contract: C={} K={} ε={:.3} δ={:.2} (ppr {:.2})\n",
        spec.c(),
        spec.k(),
        spec.epsilon(),
        spec.delta(),
        spec.ppr()
    );
    println!(
        "{:<12} {:>10} {:>8} {:>8} {:>10}",
        "scheme", "avg_pred", "ropp", "rrpp", "published"
    );

    for scheme in BiasScheme::paper_variants(2) {
        let publisher = Publisher::new(spec, scheme, 99);
        let mut pipeline = StreamPipeline::new(window, publisher);
        let mut stream = DatasetProfile::Pos.source(17);

        // Fill the window.
        for _ in 0..window - 1 {
            pipeline.advance(stream.next_transaction());
        }

        let mut pred_sum = 0.0;
        let mut ropp_sum = 0.0;
        let mut rrpp_sum = 0.0;
        let mut published = 0usize;
        for _ in 0..windows_to_measure {
            for _ in 0..publish_every {
                pipeline.advance(stream.next_transaction());
            }
            let release = pipeline.publish_now().expect("window is full");
            let m = metrics::window_metrics(&release.release, &[], None, 0.95);
            pred_sum += m.avg_pred;
            ropp_sum += m.ropp;
            rrpp_sum += m.rrpp;
            published += release.release.len();
        }
        let n = windows_to_measure as f64;
        println!(
            "{:<12} {:>10.5} {:>8.3} {:>8.3} {:>10}",
            scheme.name(),
            pred_sum / n,
            ropp_sum / n,
            rrpp_sum / n,
            published
        );
    }

    println!(
        "\nexpected shape (paper Fig. 5): order-preserving tops ropp, \
         ratio-preserving tops rrpp, the λ=0.4 hybrid is second-best on both, \
         and basic has the lowest precision loss."
    );
}
