//! Differential suite for the incremental `ReleaseEngine`: over 100+
//! published windows of a random stream, the incremental publisher (FEC
//! index delta-maintained across windows, order DP warm-started from the
//! previous window's layers) must be **bit-identical** to the batch
//! publisher — same releases, same deltas, at every thread count — and the
//! delta chain must reconstruct every release exactly.

use butterfly_repro::butterfly::{
    partition_into_fecs, BiasScheme, FecIndex, PrivacySpec, Publisher, ReleaseDelta,
    SanitizedItemset, SanitizedRelease, StreamPipeline,
};
use butterfly_repro::common::{pool, ItemSet, SanitizedSupport, Support};
use butterfly_repro::datagen::DatasetProfile;
use butterfly_repro::mining::FrequentItemsets;

const WINDOW: usize = 150;
const STEP: usize = 5;
const WINDOWS: usize = 104;

fn spec() -> PrivacySpec {
    PrivacySpec::new(10, 3, 0.1, 0.5)
}

fn scheme() -> BiasScheme {
    // Hybrid exercises every incremental stage: the FEC index, the
    // warm-started order DP, and the ratio blend.
    BiasScheme::Hybrid {
        lambda: 0.4,
        gamma: 2,
    }
}

/// Mine the shared window sequence once: the closed frequent itemsets at
/// `WINDOWS` sliding-window positions, `STEP` records apart (~97% overlap).
fn collect_windows() -> Vec<FrequentItemsets> {
    let mut pipe = StreamPipeline::new(WINDOW, Publisher::new(spec(), BiasScheme::Basic, 1));
    let mut src = DatasetProfile::WebView1.source(31);
    for _ in 0..WINDOW {
        pipe.advance(src.next_transaction());
    }
    let mut out = vec![pipe.publish_now().expect("window just filled").closed];
    while out.len() < WINDOWS {
        for _ in 0..STEP {
            pipe.advance(src.next_transaction());
        }
        out.push(pipe.publish_now().expect("window stays full").closed);
    }
    out
}

type FlatRelease = Vec<(ItemSet, Support, SanitizedSupport)>;
type FlatDelta = (FlatRelease, FlatRelease, Vec<ItemSet>);

fn flat_entries(entries: &[SanitizedItemset]) -> FlatRelease {
    entries
        .iter()
        .map(|e| (e.itemset().clone(), e.true_support, e.sanitized))
        .collect()
}

fn flat_release(r: &SanitizedRelease) -> FlatRelease {
    r.iter()
        .map(|e| (e.itemset().clone(), e.true_support, e.sanitized))
        .collect()
}

fn flat_delta(d: &ReleaseDelta) -> FlatDelta {
    (
        flat_entries(&d.added),
        flat_entries(&d.changed),
        d.removed.iter().map(|id| id.resolve().clone()).collect(),
    )
}

struct Run {
    releases: Vec<FlatRelease>,
    deltas: Vec<FlatDelta>,
    dp_counters: Option<(u64, u64, u64)>,
}

/// Publish every window through one stateful publisher, checking the delta
/// chain invariants as it goes: each delta diffs against the previous
/// release exactly (`between`) and reconstructs the next one exactly
/// (`apply`).
fn run_engine(windows: &[FrequentItemsets], incremental: bool) -> Run {
    let mut publisher = if incremental {
        Publisher::new_incremental(spec(), scheme(), 77)
    } else {
        Publisher::new(spec(), scheme(), 77)
    };
    let mut releases = Vec::new();
    let mut deltas = Vec::new();
    let mut prev = SanitizedRelease::new(Vec::new());
    for w in windows {
        let (r, d) = publisher.publish_with_delta(w);
        assert_eq!(
            d,
            ReleaseDelta::between(&prev, &r),
            "emitted delta is not the diff against the previous release"
        );
        assert_eq!(
            d.apply(&prev),
            r,
            "delta chain failed to reconstruct the release"
        );
        releases.push(flat_release(&r));
        deltas.push(flat_delta(&d));
        prev = r;
    }
    Run {
        releases,
        deltas,
        dp_counters: publisher.incremental_stats(),
    }
}

/// The tentpole differential: batch and incremental publishers agree on
/// every release and every delta of a 100+-window random stream, at 1, 2,
/// and 8 threads, and the incremental DP cache actually engages.
#[test]
fn incremental_engine_is_bit_identical_to_batch_at_every_thread_count() {
    let windows = collect_windows();
    assert!(windows.len() >= 100, "suite must cover 100+ windows");
    assert!(
        windows.windows(2).any(|w| w[0] != w[1]),
        "stream never churned; the differential would be vacuous"
    );
    assert!(
        windows.iter().all(|w| !w.is_empty()),
        "a window mined nothing; pick a denser profile"
    );

    pool::set_threads(1);
    let base_batch = run_engine(&windows, false);
    let base_incr = run_engine(&windows, true);
    assert_eq!(
        base_batch.releases, base_incr.releases,
        "incremental releases diverged from batch at 1 thread"
    );
    assert_eq!(
        base_batch.deltas, base_incr.deltas,
        "incremental deltas diverged from batch at 1 thread"
    );
    assert!(base_batch.dp_counters.is_none(), "batch has no DP cache");
    let (reuse, warm, full) = base_incr.dp_counters.expect("incremental publisher");
    assert!(
        reuse + warm > 0,
        "DP cache never engaged on a ~97%-overlap stream (reuse {reuse}, warm {warm}, full {full})"
    );

    for threads in [2usize, 8] {
        pool::set_threads(threads);
        let batch = run_engine(&windows, false);
        let incr = run_engine(&windows, true);
        assert_eq!(
            batch.releases, base_batch.releases,
            "batch releases changed at {threads} threads"
        );
        assert_eq!(
            incr.releases, base_incr.releases,
            "incremental releases changed at {threads} threads"
        );
        assert_eq!(
            incr.deltas, base_incr.deltas,
            "incremental deltas changed at {threads} threads"
        );
        assert_eq!(
            incr.dp_counters, base_incr.dp_counters,
            "cache decisions must be thread-count independent"
        );
    }

    // Leave the process-wide pool setting as other tests expect it.
    pool::set_threads(0);
}

/// The delta-maintained FEC index tracks the batch partition over the whole
/// window sequence (release-build coverage for what the engine
/// `debug_assert`s on every publish).
#[test]
fn fec_index_tracks_batch_partition_across_the_stream() {
    let windows = collect_windows();
    let mut idx = FecIndex::new();
    let mut churn_total = 0usize;
    for w in &windows {
        churn_total += idx.update(w).total();
        assert_eq!(idx.fecs(), partition_into_fecs(w));
    }
    assert!(churn_total > 0, "no churn; the maintenance is untested");
}
