//! Property tests for the mixed NDJSON/binary `FrameCodec`: seeded-random
//! frames must round-trip byte-exactly through arbitrary chunking, every
//! truncation must wait (never panic, never mis-frame), garbage must not
//! break stream alignment, and the frame cap must bind exactly at its
//! boundary for both encodings.

use butterfly_repro::common::rng::{Rng, SmallRng};
use butterfly_repro::common::{BinaryEntry, BinaryFrame, Error, Frame, FrameCodec, ItemSet, Json};

fn random_key(rng: &mut SmallRng) -> String {
    let len = 1 + rng.gen_range_usize(12);
    (0..len)
        .map(|_| char::from(b'a' + rng.gen_range_usize(26) as u8))
        .collect()
}

fn random_ids(rng: &mut SmallRng) -> Vec<u32> {
    let len = rng.gen_range_usize(6);
    let mut ids: Vec<u32> = (0..len)
        .map(|_| rng.gen_range_i64(0, 10_000) as u32)
        .collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

fn random_entries(rng: &mut SmallRng) -> Vec<BinaryEntry> {
    let n = rng.gen_range_usize(5);
    (0..n)
        .map(|_| BinaryEntry {
            ids: random_ids(rng),
            // Sanitized supports may be negative or extreme.
            support: match rng.gen_range_usize(4) {
                0 => i64::MIN,
                1 => i64::MAX,
                _ => rng.gen_range_i64(-1_000, 1_000),
            },
        })
        .collect()
}

/// One random frame of any shape, plus its wire bytes. JSON lines are part
/// of the property: negotiation is per frame, so the codec must re-sync the
/// encoding decision at every frame boundary.
fn random_frame(rng: &mut SmallRng) -> (Frame, Vec<u8>) {
    match rng.gen_range_usize(4) {
        0 => {
            let doc = format!(
                "{{\"op\":\"ping\",\"n\":{},\"s\":\"{}\"}}",
                rng.gen_range_i64(-1 << 40, 1 << 40),
                random_key(rng)
            );
            let frame = Frame::Json(Json::parse(&doc).expect("generated json"));
            (frame, format!("{doc}\n").into_bytes())
        }
        1 => {
            let b = BinaryFrame::Ingest {
                stream: random_key(rng),
                batch: (0..rng.gen_range_usize(4))
                    .map(|_| ItemSet::from_ids(random_ids(rng)))
                    .collect(),
            };
            let bytes = b.encode();
            (Frame::Binary(b), bytes)
        }
        2 => {
            let b = BinaryFrame::Release {
                stream: random_key(rng),
                stream_len: rng.next_u64(),
                entries: random_entries(rng),
            };
            let bytes = b.encode();
            (Frame::Binary(b), bytes)
        }
        _ => {
            let b = BinaryFrame::ReleaseDelta {
                stream: random_key(rng),
                stream_len: rng.next_u64(),
                base_len: rng.next_u64(),
                added: random_entries(rng),
                changed: random_entries(rng),
                removed: (0..rng.gen_range_usize(4))
                    .map(|_| random_ids(rng))
                    .collect(),
            };
            let bytes = b.encode();
            (Frame::Binary(b), bytes)
        }
    }
}

/// Decode everything currently decodable, panicking on any error — used
/// where the property says no error may occur.
fn drain_ok(codec: &mut FrameCodec) -> Vec<Frame> {
    let mut out = Vec::new();
    while let Some(f) = codec.next_frame().expect("well-formed stream") {
        out.push(f);
    }
    out
}

/// 100 seeds × ~20 mixed frames each, delivered in random chunk sizes
/// (including 1-byte drip-feeds): the decoded sequence must equal the
/// generated one exactly, independent of how the transport fragments it.
#[test]
fn random_frames_round_trip_through_arbitrary_chunking() {
    for seed in 0..100u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = 5 + rng.gen_range_usize(16);
        let mut expected = Vec::with_capacity(n);
        let mut wire = Vec::new();
        for _ in 0..n {
            let (frame, bytes) = random_frame(&mut rng);
            expected.push(frame);
            wire.extend_from_slice(&bytes);
        }
        let mut codec = FrameCodec::new();
        let mut decoded = Vec::new();
        let mut pos = 0;
        while pos < wire.len() {
            let chunk = 1 + rng.gen_range_usize(97.min(wire.len() - pos));
            codec.extend(&wire[pos..pos + chunk]);
            pos += chunk;
            decoded.extend(drain_ok(&mut codec));
        }
        assert_eq!(decoded, expected, "seed {seed} diverged");
        assert!(codec.is_blank(), "seed {seed} left residue");
    }
}

/// Every strict prefix of a frame stream decodes to a prefix of the full
/// decode and then reports `Ok(None)` ("need more bytes") — truncation is
/// never an error, a panic, or a phantom frame.
#[test]
fn truncation_at_every_prefix_waits_for_more() {
    let mut rng = SmallRng::seed_from_u64(7);
    let mut expected = Vec::new();
    let mut wire = Vec::new();
    for _ in 0..4 {
        let (frame, bytes) = random_frame(&mut rng);
        expected.push(frame);
        wire.extend_from_slice(&bytes);
    }
    for cut in 0..wire.len() {
        let mut codec = FrameCodec::new();
        codec.extend(&wire[..cut]);
        let head = drain_ok(&mut codec);
        assert!(
            head.len() <= expected.len() && head == expected[..head.len()],
            "cut {cut}: prefix decode must be a prefix of the full decode"
        );
        // Feeding the remainder always completes the stream.
        codec.extend(&wire[cut..]);
        let tail = drain_ok(&mut codec);
        assert_eq!(head.len() + tail.len(), expected.len(), "cut {cut}");
        assert_eq!(tail, expected[head.len()..], "cut {cut}");
    }
}

/// A garbage prefix — random bytes that are neither valid JSON nor a binary
/// frame — costs exactly one recoverable error per garbage line; every
/// well-formed frame after it still decodes. Alignment survives because
/// garbage that does not start with the binary magic is consumed as an
/// NDJSON line up to its newline.
#[test]
fn garbage_prefix_is_recoverable_and_preserves_alignment() {
    for seed in 0..50u64 {
        let mut rng = SmallRng::seed_from_u64(1000 + seed);
        // Printable garbage, guaranteed non-JSON by the leading '#', with
        // no newline or binary magic inside.
        let garbage: String = std::iter::once('#')
            .chain(
                (0..rng.gen_range_usize(40))
                    .map(|_| char::from(b' ' + rng.gen_range_usize(0x5e) as u8)),
            )
            .collect();
        let (frame, bytes) = random_frame(&mut rng);
        let mut codec = FrameCodec::new();
        codec.extend(garbage.as_bytes());
        codec.extend(b"\n");
        codec.extend(&bytes);
        match codec.next_frame() {
            Err(Error::Parse(msg)) => {
                assert!(
                    !msg.contains("oversized"),
                    "seed {seed}: must be recoverable"
                )
            }
            other => panic!("seed {seed}: expected a parse error, got {other:?}"),
        }
        assert_eq!(
            codec.next_frame().expect("aligned after garbage"),
            Some(frame),
            "seed {seed}: lost alignment"
        );
        assert_eq!(codec.next_frame().expect("drained"), None);
    }
}

/// The cap binds exactly: a binary payload of exactly `max` bytes decodes,
/// one byte more is an oversized (fatal) error raised from the header alone
/// — before any payload is buffered.
#[test]
fn binary_cap_binds_exactly_at_the_boundary() {
    let frame = BinaryFrame::Ingest {
        stream: "edge".into(),
        batch: vec![ItemSet::from_ids([1u32, 2, 3])],
    };
    let bytes = frame.encode();
    let payload_len = bytes.len() - 6; // magic + op + u32 length prefix
    let mut at_cap = FrameCodec::with_max(payload_len);
    at_cap.extend(&bytes);
    assert_eq!(
        at_cap.next_frame().expect("exactly at the cap is legal"),
        Some(Frame::Binary(frame))
    );
    let mut over_cap = FrameCodec::with_max(payload_len - 1);
    // Header only: the oversized verdict must not wait for payload bytes.
    over_cap.extend(&bytes[..6]);
    match over_cap.next_frame() {
        Err(Error::Parse(msg)) => assert!(msg.contains("oversized"), "{msg}"),
        other => panic!("expected oversized error, got {other:?}"),
    }
}

/// The same cap governs NDJSON: a line that fits (terminator included)
/// parses, while `max + 1` buffered bytes without a newline are oversized —
/// the stream cannot be re-synced past an unbounded line.
#[test]
fn ndjson_cap_binds_exactly_at_the_boundary() {
    let cap = 64;
    let doc = format!("{{\"pad\":\"{}\"}}", "x".repeat(cap - 10));
    assert_eq!(doc.len(), cap);
    let mut codec = FrameCodec::with_max(cap);
    codec.extend(doc.as_bytes());
    assert_eq!(codec.next_frame().expect("still waiting"), None);
    codec.extend(b"\n");
    assert!(matches!(
        codec.next_frame().expect("line at the cap is legal"),
        Some(Frame::Json(_))
    ));

    let mut over = FrameCodec::with_max(cap);
    over.extend(&vec![b'{'; cap + 1]);
    match over.next_frame() {
        Err(Error::Parse(msg)) => assert!(msg.contains("oversized"), "{msg}"),
        other => panic!("expected oversized error, got {other:?}"),
    }

    // The verdict must not depend on transport fragmentation: the same
    // over-cap line delivered complete — newline and all — in a single
    // extend is equally oversized.
    let mut whole = FrameCodec::with_max(cap);
    let long = format!("{{\"pad\":\"{}\"}}\n", "x".repeat(cap));
    whole.extend(long.as_bytes());
    match whole.next_frame() {
        Err(Error::Parse(msg)) => assert!(msg.contains("oversized"), "{msg}"),
        other => panic!("expected oversized error, got {other:?}"),
    }
}
