//! Differential test for the vertical tid-bitmap engine: on seeded random
//! sliding windows, [`VerticalIndex`] support counts — positive itemsets and
//! generalized patterns with negations — must equal the naive
//! per-transaction scan of the materialized window database, at every slide,
//! including the evict/insert steady state where tids wrap around the ring
//! boundary (tid % capacity cycles back to slot 0).

use butterfly_repro::common::rng::{Rng, SmallRng};
use butterfly_repro::common::{
    ItemSet, Pattern, SlidingWindow, SupportMemo, TidScratch, VerticalIndex,
};
use butterfly_repro::datagen::{DatasetProfile, QuestConfig, QuestGenerator};
use butterfly_repro::inference::GroundTruth;

/// Random query itemset of 1..=4 items over `0..universe`.
fn arb_itemset(rng: &mut SmallRng, universe: u32) -> ItemSet {
    let len = 1 + rng.gen_range_usize(4);
    ItemSet::from_ids((0..len).map(|_| rng.gen_range_usize(universe as usize) as u32))
}

/// Compare the maintained index against the scanned database for a batch of
/// random itemset and pattern queries.
fn assert_counts_agree(
    index: &VerticalIndex,
    window: &SlidingWindow,
    rng: &mut SmallRng,
    universe: u32,
    step: usize,
) {
    let db = window.database();
    assert_eq!(index.len(), db.len(), "index size diverged at step {step}");
    let mut scratch = TidScratch::new();
    for _ in 0..12 {
        let q = arb_itemset(rng, universe);
        assert_eq!(
            index.support(&q, &mut scratch),
            db.support(&q),
            "positive support of {q} diverged at step {step}"
        );
    }
    for _ in 0..12 {
        // Random lattice pattern I(J\I)̄: pick J, carve a proper subset I.
        let span = arb_itemset(rng, universe);
        if span.len() < 2 {
            continue;
        }
        let mask = 1 + rng.gen_range_usize((1 << span.len()) - 2) as u32;
        let base = span.subset_by_mask(mask);
        let p = Pattern::from_lattice(&base, &span).expect("base ⊂ span");
        assert_eq!(
            index.pattern_support(&p, &mut scratch),
            db.pattern_support(&p),
            "pattern support of {p} diverged at step {step}"
        );
    }
    // Purely-negative pattern: counted from the occupied mask, not from any
    // item bitmap.
    let neg = arb_itemset(rng, universe);
    let p = Pattern::from_lattice(&ItemSet::new([]), &neg).expect("∅ ⊂ J");
    assert_eq!(
        index.pattern_support(&p, &mut scratch),
        db.pattern_support(&p),
        "purely-negative support of {p} diverged at step {step}"
    );
}

#[test]
fn vertical_matches_scan_on_quest_stream() {
    // Window 24 over 120 slides: tids wrap the ring boundary five times.
    let mut rng = SmallRng::seed_from_u64(0xb1f7);
    let mut gen = QuestGenerator::new(QuestConfig::default(), 404);
    let mut window = SlidingWindow::new(24);
    let mut index = VerticalIndex::new(24);
    for step in 0..120 {
        let delta = window.slide(gen.next_transaction());
        index.apply(&delta);
        assert_counts_agree(&index, &window, &mut rng, 40, step);
    }
}

#[test]
fn vertical_matches_scan_on_dataset_profiles() {
    // Denser, correlated streams; window 64 over 200 slides wraps the ring
    // three times while evict+insert reuse each slot.
    for (profile, seed) in [(DatasetProfile::WebView1, 11u64), (DatasetProfile::Pos, 12)] {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xdead);
        let mut source = profile.source(seed);
        let mut window = SlidingWindow::new(64);
        let mut index = VerticalIndex::new(64);
        for step in 0..200 {
            let delta = window.slide(source.next_transaction());
            index.apply(&delta);
            if step % 7 == 0 {
                assert_counts_agree(&index, &window, &mut rng, 60, step);
            }
        }
    }
}

#[test]
fn ground_truth_oracle_matches_scan_with_memo() {
    // The memoized GroundTruth wrapper must agree with the scan too, and
    // repeated queries of the same itemset within a window must hit the memo
    // rather than recounting.
    let mut source = DatasetProfile::WebView1.source(21);
    let mut window = SlidingWindow::new(32);
    let mut truth = GroundTruth::new(32);
    let queries: Vec<ItemSet> = {
        let mut rng = SmallRng::seed_from_u64(7);
        (0..8).map(|_| arb_itemset(&mut rng, 50)).collect()
    };
    for step in 0..96 {
        let delta = window.slide(source.next_transaction());
        truth.apply(&delta);
        let db = window.database();
        for q in &queries {
            let first = truth.support(q);
            assert_eq!(first, db.support(q), "oracle diverged at step {step}");
            assert_eq!(truth.support(q), first, "memoized recount changed");
        }
    }
    let (hits, misses) = truth.memo_stats();
    assert!(hits > 0, "repeated queries never hit the memo");
    assert!(misses > 0, "fresh windows never missed the memo");
}

#[test]
fn support_memo_invalidates_per_window_version() {
    let mut memo = SupportMemo::new();
    memo.advance(1);
    let id = butterfly_repro::common::ItemsetId::intern(&"ab".parse::<ItemSet>().unwrap());
    assert_eq!(memo.get_or_count(id, || 5), 5);
    assert_eq!(memo.get_or_count(id, || 99), 5, "hit must not recount");
    memo.advance(2);
    assert_eq!(
        memo.get_or_count(id, || 7),
        7,
        "stale window value survived"
    );
}
