//! Property-based tests over the workspace's core invariants, driven by a
//! deterministic seeded generator (no external property-testing dependency:
//! every case is reproducible from its printed seed).

use butterfly_repro::butterfly::fec::partition_into_fecs;
use butterfly_repro::butterfly::metrics::{ropp, rrpp};
use butterfly_repro::butterfly::{
    BiasScheme, NoiseRegion, PrivacySpec, SanitizedItemset, SanitizedRelease,
};
use butterfly_repro::common::rng::{Rng, SmallRng};
use butterfly_repro::common::{Database, ItemSet, ItemsetId, Pattern};
use butterfly_repro::inference::derive::derive_pattern_support;
use butterfly_repro::inference::support_bounds;
use butterfly_repro::mining::fpstream::TiltedTimeWindow;
use butterfly_repro::mining::{Apriori, FpGrowth, FrequentItemsets};
use std::collections::HashMap;

/// Number of random cases per property.
const CASES: u64 = 48;

/// Deterministic per-case RNG: `property_seed` names the property, `case`
/// indexes the run, so a failure report ("case N") reproduces exactly.
fn case_rng(property_seed: u64, case: u64) -> SmallRng {
    SmallRng::seed_from_u64(property_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ case)
}

/// Random itemset of 1..6 items over `0..max_item`.
fn arb_itemset(rng: &mut SmallRng, max_item: u32) -> ItemSet {
    let len = 1 + rng.gen_range_usize(5);
    ItemSet::from_ids((0..len).map(|_| rng.gen_range_usize(max_item as usize) as u32))
}

/// Random small database (universe of 8 items so lattices stay enumerable).
fn arb_database(rng: &mut SmallRng) -> Database {
    let n_records = 1 + rng.gen_range_usize(24);
    Database::from_itemsets((0..n_records).map(|_| {
        let len = 1 + rng.gen_range_usize(5);
        ItemSet::from_ids((0..len).map(|_| rng.gen_range_usize(8) as u32))
    }))
}

/// Exhaustive exact view of a small database, keyed by interned handle.
fn full_view(db: &Database) -> HashMap<ItemsetId, u64> {
    let alphabet = db.alphabet();
    let n = alphabet.len() as u32;
    let mut view = HashMap::new();
    for mask in 1u32..(1 << n) {
        let x = alphabet.subset_by_mask(mask);
        let support = db.support(&x);
        view.insert(ItemsetId::intern(&x), support);
    }
    view
}

#[test]
fn itemset_algebra_laws() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let a = arb_itemset(&mut rng, 12);
        let b = arb_itemset(&mut rng, 12);
        let union = a.union(&b);
        assert!(a.is_subset_of(&union), "case {case}");
        assert!(b.is_subset_of(&union), "case {case}");
        assert_eq!(union.intersection(&a), a, "case {case}");
        let diff = a.difference(&b);
        assert!(diff.intersection(&b).is_empty(), "case {case}");
        assert_eq!(diff.union(&a.intersection(&b)), a, "case {case}");
        // Display/parse round trip.
        let reparsed: ItemSet = a.to_string().parse().unwrap();
        assert_eq!(reparsed, a, "case {case}");
    }
}

#[test]
fn interned_handles_are_stable_and_canonical() {
    // The hash-consing contract the whole pipeline leans on:
    // intern → resolve round-trips, equal itemsets get equal ids, distinct
    // itemsets get distinct ids, and get() observes without minting.
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let a = arb_itemset(&mut rng, 40);
        let b = arb_itemset(&mut rng, 40);
        let id_a = ItemsetId::intern(&a);
        assert_eq!(id_a.resolve(), &a, "case {case}: resolve lost the value");
        // Re-interning (also via a cloned value) is idempotent.
        assert_eq!(ItemsetId::intern(&a.clone()), id_a, "case {case}");
        assert_eq!(ItemsetId::get(&a), Some(id_a), "case {case}");
        let id_b = ItemsetId::intern(&b);
        assert_eq!(a == b, id_a == id_b, "case {case}: id equality diverged");
        // Handles round-trip through their raw index.
        assert_eq!(id_a.resolve(), ItemsetId::intern(id_a.resolve()).resolve());
        // Display matches the underlying itemset's.
        assert_eq!(id_a.to_string(), a.to_string(), "case {case}");
    }
}

#[test]
fn inclusion_exclusion_matches_scan() {
    // For every pattern spanned by itemsets of ≤ 4 items, the lattice
    // derivation over the exact view equals a direct database scan.
    for case in 0..CASES / 2 {
        let mut rng = case_rng(3, case);
        let db = arb_database(&mut rng);
        let alphabet = db.alphabet();
        if alphabet.len() < 2 || alphabet.len() > 8 {
            continue;
        }
        let view = full_view(&db);
        let n = alphabet.len() as u32;
        for mask in 1u32..(1 << n) {
            let span = alphabet.subset_by_mask(mask);
            if span.len() < 2 || span.len() > 4 {
                continue;
            }
            for base in span.proper_subsets() {
                let derived = derive_pattern_support(&view, &base, &span)
                    .unwrap()
                    .unwrap();
                let p = Pattern::from_lattice(&base, &span).unwrap();
                assert_eq!(derived, db.pattern_support(&p) as i64, "case {case}");
            }
        }
    }
}

#[test]
fn ndi_bounds_contain_truth() {
    for case in 0..CASES / 2 {
        let mut rng = case_rng(4, case);
        let db = arb_database(&mut rng);
        let alphabet = db.alphabet();
        if alphabet.len() < 3 || alphabet.len() > 8 {
            continue;
        }
        let n = alphabet.len() as u32;
        let mut view: HashMap<ItemSet, u64> = HashMap::new();
        for mask in 1u32..(1 << n) {
            let x = alphabet.subset_by_mask(mask);
            let support = db.support(&x);
            view.insert(x, support);
        }
        for mask in 1u32..(1 << n) {
            let j = alphabet.subset_by_mask(mask);
            if j.len() < 2 || j.len() > 4 {
                continue;
            }
            let mut hidden = view.clone();
            hidden.remove(&j);
            if let Some(b) = support_bounds(&hidden, &j) {
                let truth = db.support(&j) as i64;
                assert!(
                    b.lower <= truth && truth <= b.upper,
                    "case {case}: bounds [{},{}] exclude {} for {}",
                    b.lower,
                    b.upper,
                    truth,
                    j
                );
            }
        }
    }
}

#[test]
fn all_four_miners_agree() {
    use butterfly_repro::mining::closed::closed_subset;
    use butterfly_repro::mining::{Charm, Eclat};
    for case in 0..CASES {
        let mut rng = case_rng(5, case);
        let db = arb_database(&mut rng);
        let c = 1 + rng.gen_range_usize(5) as u64;
        let apriori = Apriori::new(c).mine(&db);
        assert_eq!(FpGrowth::new(c).mine(&db), apriori, "case {case}");
        assert_eq!(Eclat::new(c).mine(&db), apriori, "case {case}");
        assert_eq!(
            Charm::new(c).mine_closed(&db),
            closed_subset(&apriori),
            "case {case}"
        );
    }
}

#[test]
fn dense_bitset_mirrors_sparse_ops() {
    use butterfly_repro::common::DenseItemSet;
    for case in 0..CASES {
        let mut rng = case_rng(6, case);
        let a = arb_itemset(&mut rng, 100);
        let b = arb_itemset(&mut rng, 100);
        let da = DenseItemSet::from_itemset(&a, 100);
        let db_ = DenseItemSet::from_itemset(&b, 100);
        assert_eq!(da.union(&db_).to_itemset(), a.union(&b), "case {case}");
        assert_eq!(
            da.intersection(&db_).to_itemset(),
            a.intersection(&b),
            "case {case}"
        );
        assert_eq!(
            da.difference(&db_).to_itemset(),
            a.difference(&b),
            "case {case}"
        );
        assert_eq!(da.is_subset_of(&db_), a.is_subset_of(&b), "case {case}");
        assert_eq!(da.to_itemset(), a, "case {case}");
    }
}

#[test]
fn rule_confidences_are_exact_ratios() {
    use butterfly_repro::mining::generate_rules;
    for case in 0..CASES {
        let mut rng = case_rng(7, case);
        let db = arb_database(&mut rng);
        let frequent = Apriori::new(1).mine(&db);
        for rule in generate_rules(&frequent, 0.01) {
            let union = rule.antecedent.union(&rule.consequent);
            let expected = db.support(&union) as f64 / db.support(&rule.antecedent) as f64;
            assert!((rule.confidence - expected).abs() < 1e-12, "case {case}");
            assert_eq!(rule.support, db.support(&union), "case {case}");
        }
    }
}

#[test]
fn noise_region_sample_bounds() {
    for case in 0..CASES {
        let mut rng = case_rng(8, case);
        let bias = rng.gen_f64() * 40.0 - 20.0;
        let alpha = 1 + rng.gen_range_usize(39) as u64;
        let region = NoiseRegion::centered(bias, alpha);
        for _ in 0..50 {
            let v = region.sample(&mut rng);
            assert!(v >= region.lo() && v <= region.hi(), "case {case}");
        }
        assert_eq!(region.hi() - region.lo(), alpha as i64, "case {case}");
        assert!((region.bias() - bias).abs() <= 0.5 + 1e-9, "case {case}");
    }
}

#[test]
fn tilted_window_conserves_mass() {
    for case in 0..CASES {
        let mut rng = case_rng(9, case);
        let len = 1 + rng.gen_range_usize(119);
        let supports: Vec<u64> = (0..len).map(|_| rng.gen_range_usize(1000) as u64).collect();
        let mut w = TiltedTimeWindow::new();
        for &s in &supports {
            w.push(s);
        }
        assert_eq!(w.total_span(), supports.len() as u64, "case {case}");
        assert_eq!(
            w.total_support(),
            supports.iter().sum::<u64>(),
            "case {case}"
        );
        // Logarithmic compression.
        assert!(w.slots().len() <= 2 * 8 + 2, "case {case}");
    }
}

#[test]
fn schemes_respect_bias_budget() {
    let spec = PrivacySpec::new(25, 5, 0.04, 1.0);
    for case in 0..CASES {
        let mut rng = case_rng(10, case);
        let len = 1 + rng.gen_range_usize(29);
        let supports: Vec<u64> = (0..len)
            .map(|_| 25 + rng.gen_range_usize(375) as u64)
            .collect();
        let frequent = FrequentItemsets::new(
            supports
                .iter()
                .enumerate()
                .map(|(i, &s)| (ItemSet::from_ids([i as u32]), s)),
        );
        let fecs = partition_into_fecs(&frequent);
        for scheme in BiasScheme::paper_variants(2) {
            let biases = scheme.biases(&fecs, &spec);
            assert_eq!(biases.len(), fecs.len(), "case {case}");
            for (f, b) in fecs.iter().zip(&biases) {
                assert!(
                    b.abs() <= spec.max_bias(f.support()) + 1e-9,
                    "case {case}: {} exceeded budget at t={}",
                    scheme.name(),
                    f.support()
                );
            }
        }
    }
}

#[test]
fn utility_rates_are_probabilities() {
    for case in 0..CASES {
        let mut rng = case_rng(11, case);
        let len = 1 + rng.gen_range_usize(39);
        let release = SanitizedRelease::new(
            (0..len)
                .map(|i| {
                    let t = 25 + rng.gen_range_usize(175) as u64;
                    let noise = rng.gen_range_i64(-10, 9);
                    SanitizedItemset {
                        id: ItemsetId::intern(&ItemSet::from_ids([i as u32])),
                        true_support: t,
                        sanitized: t as i64 + noise,
                    }
                })
                .collect(),
        );
        let o = ropp(&release);
        let r = rrpp(&release, 0.95);
        assert!((0.0..=1.0).contains(&o), "case {case}");
        assert!((0.0..=1.0).contains(&r), "case {case}");
    }
}

#[test]
fn moment_matches_oracle_on_arbitrary_streams() {
    use butterfly_repro::common::{SlidingWindow, Transaction};
    use butterfly_repro::mining::window_miner::RescanMiner;
    use butterfly_repro::mining::{MomentMiner, WindowMiner};
    for case in 0..CASES / 2 {
        let mut rng = case_rng(12, case);
        let n_records = 1 + rng.gen_range_usize(59);
        let window_size = 1 + rng.gen_range_usize(19);
        let c = 1 + rng.gen_range_usize(4) as u64;
        let mut window = SlidingWindow::new(window_size);
        let mut moment = MomentMiner::new(c);
        let mut oracle = RescanMiner::new(c);
        for _ in 0..n_records {
            // Empty transactions are legal window contents.
            let len = rng.gen_range_usize(5);
            let items = ItemSet::from_ids((0..len).map(|_| rng.gen_range_usize(10) as u32));
            let delta = window.slide(Transaction::new(0, items));
            moment.apply(&delta);
            oracle.apply(&delta);
            assert_eq!(
                moment.closed_frequent(),
                oracle.closed_frequent(),
                "case {case}"
            );
        }
    }
}

#[test]
fn publisher_contract_holds_over_random_support_walks() {
    // Drive one itemset's support on a random walk across windows and
    // check every release against the audit invariants, with the
    // republication pin engaged whenever the walk pauses.
    use butterfly_repro::butterfly::{audit_release, Publisher};
    let spec = PrivacySpec::new(25, 5, 0.1, 1.0);
    for case in 0..CASES {
        let mut rng = case_rng(13, case);
        let mut publisher = Publisher::new(spec, BiasScheme::RatioPreserving, rng.next_u64());
        let steps = 1 + rng.gen_range_usize(24);
        let mut support = 60i64;
        let mut prev: Option<(i64, i64)> = None; // (true, sanitized)
        for _ in 0..steps {
            support = (support + rng.gen_range_i64(-1, 1)).max(26);
            let mined = FrequentItemsets::new(vec![(ItemSet::from_ids([0]), support as u64)]);
            let release = publisher.publish(&mined);
            assert!(audit_release(&spec, &release).is_empty(), "case {case}");
            let entry = release.get(&ItemSet::from_ids([0])).unwrap();
            if let Some((t_prev, s_prev)) = prev {
                if t_prev == support {
                    assert_eq!(entry.sanitized, s_prev, "case {case}: pin broken");
                }
            }
            prev = Some((support, entry.sanitized));
        }
    }
}

#[test]
fn zero_noise_preserves_everything() {
    for case in 0..CASES {
        let mut rng = case_rng(14, case);
        let len = 2 + rng.gen_range_usize(28);
        let release = SanitizedRelease::new(
            (0..len)
                .map(|i| {
                    let t = 25 + rng.gen_range_usize(175) as u64;
                    SanitizedItemset {
                        id: ItemsetId::intern(&ItemSet::from_ids([i as u32])),
                        true_support: t,
                        sanitized: t as i64,
                    }
                })
                .collect(),
        );
        assert_eq!(ropp(&release), 1.0, "case {case}");
        assert_eq!(rrpp(&release, 0.95), 1.0, "case {case}");
    }
}
