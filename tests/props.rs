//! Property-based tests over the workspace's core invariants.

use butterfly_repro::butterfly::metrics::{ropp, rrpp};
use butterfly_repro::butterfly::{
    BiasScheme, NoiseRegion, PrivacySpec, SanitizedItemset, SanitizedRelease,
};
use butterfly_repro::butterfly::fec::partition_into_fecs;
use butterfly_repro::common::{Database, ItemSet, Pattern};
use butterfly_repro::inference::derive::derive_pattern_support;
use butterfly_repro::inference::support_bounds;
use butterfly_repro::mining::fpstream::TiltedTimeWindow;
use butterfly_repro::mining::{Apriori, FpGrowth, FrequentItemsets};
use proptest::prelude::*;
use std::collections::HashMap;

/// Random itemset over a small universe.
fn arb_itemset(max_item: u32) -> impl Strategy<Value = ItemSet> {
    prop::collection::vec(0..max_item, 1..6).prop_map(ItemSet::from_ids)
}

/// Random small database (universe of 8 items so lattices stay enumerable).
fn arb_database() -> impl Strategy<Value = Database> {
    prop::collection::vec(prop::collection::vec(0u32..8, 1..6), 1..25)
        .prop_map(|recs| Database::from_itemsets(recs.into_iter().map(ItemSet::from_ids)))
}

proptest! {
    #[test]
    fn itemset_algebra_laws(a in arb_itemset(12), b in arb_itemset(12)) {
        let union = a.union(&b);
        prop_assert!(a.is_subset_of(&union));
        prop_assert!(b.is_subset_of(&union));
        prop_assert_eq!(union.intersection(&a), a.clone());
        let diff = a.difference(&b);
        prop_assert!(diff.intersection(&b).is_empty());
        prop_assert_eq!(diff.union(&a.intersection(&b)), a.clone());
        // Display/parse round trip.
        let reparsed: ItemSet = a.to_string().parse().unwrap();
        prop_assert_eq!(reparsed, a);
    }

    #[test]
    fn inclusion_exclusion_matches_scan(db in arb_database()) {
        // For every pattern spanned by itemsets of ≤ 4 items, the lattice
        // derivation over the exact view equals a direct database scan.
        let alphabet = db.alphabet();
        prop_assume!(alphabet.len() >= 2 && alphabet.len() <= 8);
        let n = alphabet.len() as u32;
        let mut view: HashMap<ItemSet, u64> = HashMap::new();
        for mask in 1u32..(1 << n) {
            let x = alphabet.subset_by_mask(mask);
            let support = db.support(&x);
            view.insert(x, support);
        }
        for mask in 1u32..(1 << n) {
            let span = alphabet.subset_by_mask(mask);
            if span.len() < 2 || span.len() > 4 {
                continue;
            }
            for base in span.proper_subsets() {
                let derived = derive_pattern_support(&view, &base, &span)
                    .unwrap()
                    .unwrap();
                let p = Pattern::from_lattice(&base, &span).unwrap();
                prop_assert_eq!(derived, db.pattern_support(&p) as i64);
            }
        }
    }

    #[test]
    fn ndi_bounds_contain_truth(db in arb_database()) {
        let alphabet = db.alphabet();
        prop_assume!(alphabet.len() >= 3 && alphabet.len() <= 8);
        let n = alphabet.len() as u32;
        let mut view: HashMap<ItemSet, u64> = HashMap::new();
        for mask in 1u32..(1 << n) {
            let x = alphabet.subset_by_mask(mask);
            let support = db.support(&x);
            view.insert(x, support);
        }
        for mask in 1u32..(1 << n) {
            let j = alphabet.subset_by_mask(mask);
            if j.len() < 2 || j.len() > 4 {
                continue;
            }
            let mut hidden = view.clone();
            hidden.remove(&j);
            if let Some(b) = support_bounds(&hidden, &j) {
                let truth = db.support(&j) as i64;
                prop_assert!(b.lower <= truth && truth <= b.upper,
                    "bounds [{},{}] exclude {} for {}", b.lower, b.upper, truth, j);
            }
        }
    }

    #[test]
    fn all_four_miners_agree(db in arb_database(), c in 1u64..6) {
        use butterfly_repro::mining::closed::closed_subset;
        use butterfly_repro::mining::{Charm, Eclat};
        let apriori = Apriori::new(c).mine(&db);
        prop_assert_eq!(&FpGrowth::new(c).mine(&db), &apriori);
        prop_assert_eq!(&Eclat::new(c).mine(&db), &apriori);
        prop_assert_eq!(Charm::new(c).mine_closed(&db), closed_subset(&apriori));
    }

    #[test]
    fn dense_bitset_mirrors_sparse_ops(a in arb_itemset(100), b in arb_itemset(100)) {
        use butterfly_repro::common::DenseItemSet;
        let da = DenseItemSet::from_itemset(&a, 100);
        let db_ = DenseItemSet::from_itemset(&b, 100);
        prop_assert_eq!(da.union(&db_).to_itemset(), a.union(&b));
        prop_assert_eq!(da.intersection(&db_).to_itemset(), a.intersection(&b));
        prop_assert_eq!(da.difference(&db_).to_itemset(), a.difference(&b));
        prop_assert_eq!(da.is_subset_of(&db_), a.is_subset_of(&b));
        prop_assert_eq!(da.to_itemset(), a);
    }

    #[test]
    fn rule_confidences_are_exact_ratios(db in arb_database()) {
        use butterfly_repro::mining::generate_rules;
        let frequent = Apriori::new(1).mine(&db);
        for rule in generate_rules(&frequent, 0.01) {
            let union = rule.antecedent.union(&rule.consequent);
            let expected = db.support(&union) as f64 / db.support(&rule.antecedent) as f64;
            prop_assert!((rule.confidence - expected).abs() < 1e-12);
            prop_assert_eq!(rule.support, db.support(&union));
        }
    }

    #[test]
    fn noise_region_sample_bounds(bias in -20.0f64..20.0, alpha in 1u64..40, seed in any::<u64>()) {
        use rand::{rngs::SmallRng, SeedableRng};
        let region = NoiseRegion::centered(bias, alpha);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..50 {
            let v = region.sample(&mut rng);
            prop_assert!(v >= region.lo() && v <= region.hi());
        }
        prop_assert_eq!(region.hi() - region.lo(), alpha as i64);
        prop_assert!((region.bias() - bias).abs() <= 0.5 + 1e-9);
    }

    #[test]
    fn tilted_window_conserves_mass(supports in prop::collection::vec(0u64..1000, 1..120)) {
        let mut w = TiltedTimeWindow::new();
        for &s in &supports {
            w.push(s);
        }
        prop_assert_eq!(w.total_span(), supports.len() as u64);
        prop_assert_eq!(w.total_support(), supports.iter().sum::<u64>());
        // Logarithmic compression.
        prop_assert!(w.slots().len() <= 2 * 8 + 2);
    }

    #[test]
    fn schemes_respect_bias_budget(supports in prop::collection::vec(25u64..400, 1..30)) {
        let spec = PrivacySpec::new(25, 5, 0.04, 1.0);
        let frequent = FrequentItemsets::new(
            supports.iter().enumerate().map(|(i, &s)| (ItemSet::from_ids([i as u32]), s)),
        );
        let fecs = partition_into_fecs(&frequent);
        for scheme in BiasScheme::paper_variants(2) {
            let biases = scheme.biases(&fecs, &spec);
            prop_assert_eq!(biases.len(), fecs.len());
            for (f, b) in fecs.iter().zip(&biases) {
                prop_assert!(b.abs() <= spec.max_bias(f.support()) + 1e-9,
                    "{} exceeded budget at t={}", scheme.name(), f.support());
            }
        }
    }

    #[test]
    fn utility_rates_are_probabilities(
        entries in prop::collection::vec((25u64..200, -10i64..10), 1..40)
    ) {
        let release = SanitizedRelease::new(
            entries
                .iter()
                .enumerate()
                .map(|(i, &(t, noise))| SanitizedItemset {
                    itemset: ItemSet::from_ids([i as u32]),
                    true_support: t,
                    sanitized: t as i64 + noise,
                })
                .collect(),
        );
        let o = ropp(&release);
        let r = rrpp(&release, 0.95);
        prop_assert!((0.0..=1.0).contains(&o));
        prop_assert!((0.0..=1.0).contains(&r));
    }

    #[test]
    fn moment_matches_oracle_on_arbitrary_streams(
        records in prop::collection::vec(prop::collection::vec(0u32..10, 0..5), 1..60),
        window_size in 1usize..20,
        c in 1u64..5,
    ) {
        use butterfly_repro::common::{SlidingWindow, Transaction};
        use butterfly_repro::mining::window_miner::RescanMiner;
        use butterfly_repro::mining::{MomentMiner, WindowMiner};
        let mut window = SlidingWindow::new(window_size);
        let mut moment = MomentMiner::new(c);
        let mut oracle = RescanMiner::new(c);
        for items in records {
            // Empty transactions are legal window contents.
            let delta = window.slide(Transaction::new(0, ItemSet::from_ids(items)));
            moment.apply(&delta);
            oracle.apply(&delta);
            prop_assert_eq!(moment.closed_frequent(), oracle.closed_frequent());
        }
    }

    #[test]
    fn publisher_contract_holds_over_random_support_walks(
        walk in prop::collection::vec(-1i64..=1, 1..25),
        seed in any::<u64>(),
    ) {
        // Drive one itemset's support on a random walk across windows and
        // check every release against the audit invariants, with the
        // republication pin engaged whenever the walk pauses.
        use butterfly_repro::butterfly::{audit_release, BiasScheme, PrivacySpec, Publisher};
        use butterfly_repro::mining::FrequentItemsets;
        let spec = PrivacySpec::new(25, 5, 0.1, 1.0);
        let mut publisher = Publisher::new(spec, BiasScheme::RatioPreserving, seed);
        let mut support = 60i64;
        let mut prev: Option<(i64, i64)> = None; // (true, sanitized)
        for step in walk {
            support = (support + step).max(26);
            let mined = FrequentItemsets::new(vec![(
                ItemSet::from_ids([0]),
                support as u64,
            )]);
            let release = publisher.publish(&mined);
            prop_assert!(audit_release(&spec, &release).is_empty());
            let entry = release.get(&ItemSet::from_ids([0])).unwrap();
            if let Some((t_prev, s_prev)) = prev {
                if t_prev == support {
                    prop_assert_eq!(entry.sanitized, s_prev, "pin broken");
                }
            }
            prev = Some((support, entry.sanitized));
        }
    }

    #[test]
    fn zero_noise_preserves_everything(supports in prop::collection::vec(25u64..200, 2..30)) {
        let release = SanitizedRelease::new(
            supports
                .iter()
                .enumerate()
                .map(|(i, &t)| SanitizedItemset {
                    itemset: ItemSet::from_ids([i as u32]),
                    true_support: t,
                    sanitized: t as i64,
                })
                .collect(),
        );
        prop_assert_eq!(ropp(&release), 1.0);
        prop_assert_eq!(rrpp(&release, 0.95), 1.0);
    }
}
