//! Integration tests for the `butterfly` CLI binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_butterfly"))
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("bfly_cli_tests");
    std::fs::create_dir_all(&dir).expect("tempdir");
    dir.join(name)
}

#[test]
fn gen_mine_attack_protect_round_trip() {
    let dat = temp_path("roundtrip.dat");
    let status = bin()
        .args([
            "gen",
            "--profile",
            "webview1",
            "--count",
            "1500",
            "--seed",
            "7",
            "--out",
        ])
        .arg(&dat)
        .status()
        .expect("run gen");
    assert!(status.success());
    assert!(dat.exists());

    let mine = bin()
        .args(["mine", "--min-support", "40", "--closed", "--input"])
        .arg(&dat)
        .output()
        .expect("run mine");
    assert!(mine.status.success());
    let listing = String::from_utf8(mine.stdout).unwrap();
    assert!(listing.lines().count() > 3, "mine produced: {listing}");
    // Every line is "<itemset> (<support>)" with support ≥ C.
    for line in listing.lines() {
        let support: u64 = line
            .rsplit_once('(')
            .and_then(|(_, s)| s.trim_end_matches(')').parse().ok())
            .unwrap_or_else(|| panic!("malformed line {line:?}"));
        assert!(support >= 40);
    }

    let attack = bin()
        .args([
            "attack",
            "--window",
            "1000",
            "--min-support",
            "20",
            "--vulnerable",
            "4",
            "--input",
        ])
        .arg(&dat)
        .output()
        .expect("run attack");
    assert!(attack.status.success());
    let report = String::from_utf8(attack.stdout).unwrap();
    assert!(report.contains("inferable vulnerable patterns"));

    let out = temp_path("releases.jsonl");
    let protect = bin()
        .args([
            "protect",
            "--window",
            "1000",
            "--min-support",
            "20",
            "--vulnerable",
            "4",
            "--epsilon",
            "0.02",
            "--delta",
            "0.5",
            "--scheme",
            "ratio",
            "--every",
            "250",
        ])
        .arg("--input")
        .arg(&dat)
        .arg("--out")
        .arg(&out)
        .output()
        .expect("run protect");
    assert!(
        protect.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&protect.stderr)
    );
    let jsonl = std::fs::read_to_string(&out).unwrap();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert!(!lines.is_empty(), "no windows published");
    for line in &lines {
        let v = butterfly_repro::common::Json::parse(line).expect("valid JSON");
        assert!(v.get("stream_len").and_then(|s| s.as_u64()).unwrap() >= 1000);
        let itemsets = v.get("itemsets").and_then(|i| i.as_array()).unwrap();
        assert!(!itemsets.is_empty());
        for entry in itemsets {
            assert!(!entry
                .get("itemset")
                .and_then(|i| i.as_array())
                .unwrap()
                .is_empty());
            entry
                .get("support")
                .and_then(|s| s.as_i64())
                .expect("sanitized support is an integer");
        }
    }

    std::fs::remove_file(dat).ok();
    std::fs::remove_file(out).ok();
}

#[test]
fn protect_incremental_output_is_byte_identical() {
    let dat = temp_path("incr.dat");
    let status = bin()
        .args([
            "gen",
            "--profile",
            "webview1",
            "--count",
            "800",
            "--seed",
            "3",
            "--out",
        ])
        .arg(&dat)
        .status()
        .expect("run gen");
    assert!(status.success());

    let run = |out: &PathBuf, incremental: bool| {
        let mut cmd = bin();
        cmd.args([
            "protect",
            "--window",
            "500",
            "--min-support",
            "15",
            "--vulnerable",
            "3",
            "--epsilon",
            "0.05",
            "--delta",
            "0.4",
            "--scheme",
            "hybrid",
            "--every",
            "50",
            "--seed",
            "11",
        ]);
        if incremental {
            cmd.arg("--incremental");
        }
        let output = cmd
            .arg("--input")
            .arg(&dat)
            .arg("--out")
            .arg(out)
            .output()
            .expect("run protect");
        assert!(
            output.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        String::from_utf8(output.stderr).unwrap()
    };

    let batch_out = temp_path("incr_batch.jsonl");
    let incr_out = temp_path("incr_engine.jsonl");
    let batch_err = run(&batch_out, false);
    let incr_err = run(&incr_out, true);
    assert_eq!(
        std::fs::read(&batch_out).unwrap(),
        std::fs::read(&incr_out).unwrap(),
        "--incremental must not change a single published byte"
    );
    assert!(
        !batch_err.contains("incremental engine"),
        "batch run reported cache counters: {batch_err}"
    );
    assert!(
        incr_err.contains("incremental engine"),
        "missing cache counters: {incr_err}"
    );

    std::fs::remove_file(dat).ok();
    std::fs::remove_file(batch_out).ok();
    std::fs::remove_file(incr_out).ok();
}

#[test]
fn bad_flags_fail_cleanly() {
    let out = bin().args(["mine"]).output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--input"), "unhelpful error: {err}");

    let out = bin().args(["frobnicate"]).output().expect("run");
    assert!(!out.status.success());

    let out = bin().output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr).unwrap().contains("USAGE"));
}

#[test]
fn unknown_flags_rejected_with_valid_set() {
    // A typo must be an error naming the valid flags, never silently
    // ignored (a silently dropped --scheme would publish under the default).
    let out = bin()
        .args([
            "protect", "--input", "x.dat", "--window", "10", "--schme", "basic",
        ])
        .output()
        .expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown flag --schme"), "got: {err}");
    assert!(err.contains("--scheme"), "should list valid flags: {err}");
    assert!(
        err.contains("--threads"),
        "global flags belong in the list: {err}"
    );

    // Flags valid for one command are still rejected on another.
    let out = bin()
        .args(["gen", "--profile", "pos", "--count", "5", "--window", "10"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown flag --window"), "got: {err}");
}

#[test]
fn serve_federation_flags_rejected_with_valid_sets() {
    // Each malformed serve flag must die at startup with a message naming
    // the valid set — never a silently misconfigured cluster.
    let cases: &[(&[&str], &[&str])] = &[
        // --wal-sync edges (requires --wal-dir; interval must be a positive int).
        (
            &["--wal-sync", "always"],
            &["--wal-sync requires --wal-dir"],
        ),
        (
            &["--wal-dir", "/tmp/w", "--wal-sync", "interval:0"],
            &["interval", "positive"],
        ),
        (
            &["--wal-dir", "/tmp/w", "--wal-sync", "interval:x"],
            &["interval", "positive integer"],
        ),
        (
            &["--wal-dir", "/tmp/w", "--wal-sync", "sometimes"],
            &["always", "interval:<n>", "never"],
        ),
        // --role edges.
        (&["--role", "proxy"], &["node", "router"]),
        (&["--role", "router"], &["--nodes"]),
        // --nodes edges: empty entry, unparsable, duplicate, node role.
        (
            &[
                "--role",
                "router",
                "--nodes",
                "127.0.0.1:7001,,127.0.0.1:7002",
            ],
            &["empty entry", "ip:port"],
        ),
        (
            &["--role", "router", "--nodes", "not-an-addr"],
            &["bad node address", "ip:port"],
        ),
        (
            &[
                "--role",
                "router",
                "--nodes",
                "127.0.0.1:7001,127.0.0.1:7001",
            ],
            &["duplicate node address"],
        ),
        (
            &["--nodes", "127.0.0.1:7001"],
            &["--nodes requires --role router"],
        ),
        // Conflicting --role/--wal-dir: the router is stateless.
        (
            &[
                "--role",
                "router",
                "--nodes",
                "127.0.0.1:7001",
                "--wal-dir",
                "/tmp/w",
            ],
            &["--wal-dir", "stateless"],
        ),
        // Router + reactor io conflict.
        (
            &[
                "--role",
                "router",
                "--nodes",
                "127.0.0.1:7001",
                "--io",
                "reactor",
            ],
            &["reactor", "blocking"],
        ),
    ];
    for (args, wants) in cases {
        let out = bin()
            .arg("serve")
            .args(*args)
            .output()
            .expect("run serve with bad flags");
        assert!(!out.status.success(), "serve {args:?} should fail");
        let err = String::from_utf8(out.stderr).unwrap();
        for want in *wants {
            assert!(
                err.contains(want),
                "serve {args:?}: {err:?} missing {want:?}"
            );
        }
    }
}

#[test]
fn deterministic_generation() {
    let a = temp_path("det_a.dat");
    let b = temp_path("det_b.dat");
    for path in [&a, &b] {
        let status = bin()
            .args([
                "gen",
                "--profile",
                "pos",
                "--count",
                "300",
                "--seed",
                "9",
                "--out",
            ])
            .arg(path)
            .status()
            .expect("run gen");
        assert!(status.success());
    }
    assert_eq!(
        std::fs::read(&a).unwrap(),
        std::fs::read(&b).unwrap(),
        "same seed must give identical corpora"
    );
    std::fs::remove_file(a).ok();
    std::fs::remove_file(b).ok();
}
