//! Integration: the three independent mining paths agree on streaming
//! windows of realistic synthetic data.

use butterfly_repro::common::{Database, SlidingWindow};
use butterfly_repro::datagen::DatasetProfile;
use butterfly_repro::mining::closed::{closed_subset, expand_closed};
use butterfly_repro::mining::{Apriori, FpGrowth, MomentMiner, WindowMiner};

#[test]
fn moment_fpgrowth_apriori_agree_over_a_sliding_stream() {
    let mut src = DatasetProfile::WebView1.source(13);
    let mut window = SlidingWindow::new(400);
    let c = 12u64;
    let mut moment = MomentMiner::new(c);

    for step in 0..900 {
        let delta = window.slide(src.next_transaction());
        moment.apply(&delta);
        // Full checks are expensive; sample the stream at irregular points,
        // always including the window-fill boundary.
        if !(step == 399 || step % 173 == 0 && step > 399) {
            continue;
        }
        let db = window.database();
        let apriori = Apriori::new(c).mine(&db);
        let fpgrowth = FpGrowth::new(c).mine(&db);
        assert_eq!(apriori, fpgrowth, "static miners disagree at step {step}");
        let closed = closed_subset(&apriori);
        assert_eq!(
            moment.closed_frequent(),
            closed,
            "incremental CET diverged at step {step}"
        );
        assert_eq!(moment.all_frequent(), apriori);
        let _ = expand_closed(&closed);
    }
}

#[test]
fn moment_handles_pos_profile_with_larger_baskets() {
    let mut src = DatasetProfile::Pos.source(29);
    let mut window = SlidingWindow::new(300);
    let c = 15u64;
    let mut moment = MomentMiner::new(c);
    for _ in 0..600 {
        moment.apply(&window.slide(src.next_transaction()));
    }
    let db: Database = window.database();
    let expected = closed_subset(&FpGrowth::new(c).mine(&db));
    assert_eq!(moment.closed_frequent(), expected);
    assert!(moment.node_count() > 0);
}
