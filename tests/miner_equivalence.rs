//! Integration: the independent mining paths agree on streaming windows of
//! realistic synthetic data — both directly and through the pluggable
//! [`MinerBackend`] interface the pipeline consumes.
//!
//! [`MinerBackend`]: butterfly_repro::mining::MinerBackend

use butterfly_repro::common::{Database, SlidingWindow};
use butterfly_repro::datagen::DatasetProfile;
use butterfly_repro::mining::closed::{closed_subset, expand_closed};
use butterfly_repro::mining::{
    mine_backend_matrix, Apriori, BackendKind, FpGrowth, MinerBackend, MomentMiner, WindowMiner,
};

#[test]
fn moment_fpgrowth_apriori_agree_over_a_sliding_stream() {
    let mut src = DatasetProfile::WebView1.source(13);
    let mut window = SlidingWindow::new(400);
    let c = 12u64;
    let mut moment = MomentMiner::new(c);

    for step in 0..900 {
        let delta = window.slide(src.next_transaction());
        WindowMiner::apply(&mut moment, &delta);
        // Full checks are expensive; sample the stream at irregular points,
        // always including the window-fill boundary.
        if !(step == 399 || step % 173 == 0 && step > 399) {
            continue;
        }
        let db = window.database();
        let apriori = Apriori::new(c).mine(&db);
        let fpgrowth = FpGrowth::new(c).mine(&db);
        assert_eq!(apriori, fpgrowth, "static miners disagree at step {step}");
        let closed = closed_subset(&apriori);
        assert_eq!(
            WindowMiner::closed_frequent(&moment),
            closed,
            "incremental CET diverged at step {step}"
        );
        assert_eq!(moment.all_frequent(), apriori);
        let _ = expand_closed(&closed);
    }
}

#[test]
fn moment_handles_pos_profile_with_larger_baskets() {
    let mut src = DatasetProfile::Pos.source(29);
    let mut window = SlidingWindow::new(300);
    let c = 15u64;
    let mut moment = MomentMiner::new(c);
    for _ in 0..600 {
        WindowMiner::apply(&mut moment, &window.slide(src.next_transaction()));
    }
    let db: Database = window.database();
    let expected = closed_subset(&FpGrowth::new(c).mine(&db));
    assert_eq!(WindowMiner::closed_frequent(&moment), expected);
    assert!(moment.node_count() > 0);
}

#[test]
fn exact_backend_matrix_agrees_over_a_sliding_stream() {
    // Every exact backend, driven through the uniform MinerBackend trait,
    // must produce identical frequent and closed-frequent results at every
    // sampled point of a realistic sliding stream (including the warm-up
    // boundary and post-eviction steady state).
    let c = 12u64;
    let mut backends: Vec<Box<dyn MinerBackend>> =
        BackendKind::EXACT.iter().map(|k| k.build(c)).collect();
    assert!(backends.len() >= 4, "matrix needs at least four backends");
    let mut src = DatasetProfile::WebView1.source(13);
    let mut window = SlidingWindow::new(400);

    for step in 0..700 {
        let delta = window.slide(src.next_transaction());
        for b in backends.iter_mut() {
            b.apply(&delta);
        }
        if !(step == 399 || step % 149 == 0 && step > 399) {
            continue;
        }
        let oracle = Apriori::new(c).mine(&window.database());
        let oracle_closed = closed_subset(&oracle);
        // Re-mine all backends concurrently; results come back in backend
        // order, so the per-backend attribution below is unchanged.
        let matrix = mine_backend_matrix(&backends);
        for ((b, kind), (frequent, closed)) in backends.iter().zip(BackendKind::EXACT).zip(&matrix)
        {
            assert_eq!(b.name(), kind.name());
            assert!(b.is_exact());
            assert_eq!(b.min_support(), c);
            assert_eq!(
                *frequent,
                oracle,
                "{} frequent() diverged at step {step}",
                b.name()
            );
            assert_eq!(
                *closed,
                oracle_closed,
                "{} closed_frequent() diverged at step {step}",
                b.name()
            );
        }
    }
}

#[test]
fn approximate_backends_cover_the_exact_result() {
    // FP-stream and the damped miner are approximate (declared via
    // is_exact), but both err on the side of over-reporting: every truly
    // frequent itemset appears in their output.
    let c = 15u64;
    let mut src = DatasetProfile::WebView1.source(29);
    let mut window = SlidingWindow::new(300);
    let mut approx: Vec<Box<dyn MinerBackend>> = [BackendKind::FpStream, BackendKind::Damped]
        .iter()
        .map(|k| k.build(c))
        .collect();
    let mut truth = MomentMiner::new(c);
    for _ in 0..300 {
        let delta = window.slide(src.next_transaction());
        WindowMiner::apply(&mut truth, &delta);
        for b in approx.iter_mut() {
            b.apply(&delta);
        }
    }
    let exact = truth.all_frequent();
    assert!(!exact.is_empty());

    // FP-stream's σ/ε error bound promises no false negatives among truly
    // frequent itemsets.
    let fpstream = approx[0].frequent();
    assert!(!approx[0].is_exact(), "fpstream claims exactness");
    for e in exact.iter() {
        assert!(
            fpstream.support(e.itemset()).is_some(),
            "fpstream missed frequent itemset {}",
            e.itemset()
        );
    }

    // The damped miner intentionally forgets decayed history, so it may drop
    // borderline itemsets — but it must still recover the bulk of the truth
    // and never hallucinate wildly (reported supports stay plausible).
    let damped = approx[1].frequent();
    assert!(!approx[1].is_exact(), "damped claims exactness");
    let hits = exact
        .iter()
        .filter(|e| damped.support(e.itemset()).is_some())
        .count();
    assert!(
        2 * hits >= exact.len(),
        "damped recovered only {hits} of {} frequent itemsets",
        exact.len()
    );
    for e in damped.iter() {
        assert!(
            e.support <= 2 * window.len() as u64,
            "damped reported absurd support {} for {}",
            e.support,
            e.itemset()
        );
    }
}
