//! Integration tests for the pluggable defense layer at the CLI boundary:
//! every registered defense is seed-reproducible end to end, the defenses
//! genuinely differ on the same stream, and unknown names are rejected up
//! front with the registry's valid-name list (protect and serve alike).

use std::path::PathBuf;
use std::process::Command;
use std::sync::OnceLock;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_butterfly"))
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("bfly_defense_tests");
    std::fs::create_dir_all(&dir).expect("tempdir");
    dir.join(name)
}

/// Generate the shared input stream once per test process.
fn stream() -> &'static PathBuf {
    static STREAM: OnceLock<PathBuf> = OnceLock::new();
    STREAM.get_or_init(|| {
        let dat = temp_path("defense.dat");
        let status = bin()
            .args([
                "gen",
                "--profile",
                "webview1",
                "--count",
                "600",
                "--seed",
                "7",
                "--out",
            ])
            .arg(&dat)
            .status()
            .expect("run gen");
        assert!(status.success());
        dat
    })
}

/// Run `protect --defense <name>` over the shared stream into `out`.
fn protect(defense: &str, out: &PathBuf) -> std::process::Output {
    bin()
        .args([
            "protect",
            "--window",
            "200",
            "--min-support",
            "8",
            "--vulnerable",
            "3",
            "--epsilon",
            "0.05",
            "--delta",
            "0.5",
            "--every",
            "40",
            "--seed",
            "11",
            "--defense",
            defense,
            "--input",
        ])
        .arg(stream())
        .arg("--out")
        .arg(out)
        .output()
        .expect("run protect")
}

#[test]
fn every_defense_is_seed_reproducible_and_they_differ_pairwise() {
    let mut outputs: Vec<(String, String)> = Vec::new();
    for defense in ["butterfly", "privbasis", "suppress"] {
        let a = temp_path(&format!("{defense}.a.jsonl"));
        let b = temp_path(&format!("{defense}.b.jsonl"));
        for out in [&a, &b] {
            let run = protect(defense, out);
            assert!(
                run.status.success(),
                "protect --defense {defense} failed: {}",
                String::from_utf8_lossy(&run.stderr)
            );
        }
        let bytes_a = std::fs::read_to_string(&a).expect("read run a");
        let bytes_b = std::fs::read_to_string(&b).expect("read run b");
        assert!(!bytes_a.is_empty(), "{defense} published nothing");
        assert_eq!(
            bytes_a, bytes_b,
            "--defense {defense} must be byte-reproducible at a fixed seed"
        );
        outputs.push((defense.to_string(), bytes_a));
    }
    for i in 0..outputs.len() {
        for j in i + 1..outputs.len() {
            assert_ne!(
                outputs[i].1, outputs[j].1,
                "defenses {} and {} produced identical releases",
                outputs[i].0, outputs[j].0
            );
        }
    }
}

#[test]
fn protect_rejects_unknown_defense_with_the_valid_names() {
    let run = protect("rot13", &temp_path("unknown.jsonl"));
    assert!(!run.status.success(), "unknown defense must be rejected");
    let stderr = String::from_utf8_lossy(&run.stderr);
    assert!(stderr.contains("unknown defense"), "got: {stderr}");
    for name in ["butterfly", "privbasis", "suppress"] {
        assert!(
            stderr.contains(name),
            "error must list valid name {name}: {stderr}"
        );
    }
}

#[test]
fn serve_rejects_unknown_defense_before_binding() {
    let run = bin()
        .args(["serve", "--addr", "127.0.0.1:0", "--defense", "rot13"])
        .output()
        .expect("run serve");
    assert!(!run.status.success(), "unknown defense must be rejected");
    let stderr = String::from_utf8_lossy(&run.stderr);
    assert!(stderr.contains("unknown defense"), "got: {stderr}");
    assert!(
        stderr.contains("privbasis"),
        "error must list valid names: {stderr}"
    );
}

#[test]
fn dp_knobs_are_validated_at_the_cli_boundary() {
    let run = bin()
        .args([
            "protect",
            "--window",
            "200",
            "--min-support",
            "8",
            "--vulnerable",
            "3",
            "--epsilon",
            "0.05",
            "--delta",
            "0.5",
            "--defense",
            "privbasis",
            "--dp-budget",
            "0",
            "--input",
        ])
        .arg(stream())
        .output()
        .expect("run protect");
    assert!(!run.status.success(), "dp-budget 0 must be rejected");
    let stderr = String::from_utf8_lossy(&run.stderr);
    assert!(stderr.contains("dp-budget"), "got: {stderr}");
}
