//! Federation integration tests against real `butterfly serve` processes:
//! a `--role router` tier in front of N node processes must be
//! wire-invisible — every stream a client sees through the router is
//! byte-identical to the in-process pipeline over the same records (the
//! oracle the single-process network suite already pins) — and a node
//! killed mid-run must surface as *explicit per-key unavailability* while
//! the surviving node's streams stay byte-identical, with the killed
//! node's streams recovered from its own WAL by the next cluster
//! incarnation.

use butterfly_repro::common::{ItemSet, Json};
use butterfly_repro::datagen::DatasetProfile;
use butterfly_repro::serve::protocol::{release_event, CatchUp};
use butterfly_repro::serve::{Client, ClusterMap, FrameMode, Request, ServeConfig};
use std::io::Read;
use std::net::SocketAddr;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Kills the child on drop so a failing assertion never leaks a process.
struct Reaper(Child);

impl Drop for Reaper {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// The shard count every process in these clusters runs — the router's
/// slot math (`nodes × shards`) must agree with the nodes'.
const SHARDS: usize = 2;

/// The serve config every node process runs, mirrored by the in-process
/// oracle. Matches the WAL-recovery suite: windows at 120, cadence 10.
fn cluster_cfg() -> ServeConfig {
    ServeConfig {
        shards: SHARDS,
        window: 120,
        c: 15,
        k: 3,
        epsilon: 0.016,
        delta: 0.4,
        every: 10,
        seed: 42,
        ..ServeConfig::default()
    }
}

/// Spawn one `butterfly serve` process (node or router) on an ephemeral
/// port and block until the `--port-file` handshake delivers its address.
fn spawn_serve(extra: &[&str], port_file: &Path) -> (Reaper, SocketAddr) {
    let _ = std::fs::remove_file(port_file);
    let shards = SHARDS.to_string();
    let child = Command::new(env!("CARGO_BIN_EXE_butterfly"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--shards",
            &shards,
            "--window",
            "120",
            "--min-support",
            "15",
            "--vulnerable",
            "3",
            "--epsilon",
            "0.016",
            "--delta",
            "0.4",
            "--every",
            "10",
            "--seed",
            "42",
        ])
        .args(extra)
        .arg("--port-file")
        .arg(port_file)
        .env("BFLY_THREADS", "2")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn butterfly serve");
    let mut child = Reaper(child);
    let deadline = Instant::now() + Duration::from_secs(20);
    let addr = loop {
        if let Ok(mut f) = std::fs::File::open(port_file) {
            let mut text = String::new();
            if f.read_to_string(&mut text).is_ok() {
                if let Ok(addr) = text.trim().parse::<SocketAddr>() {
                    break addr;
                }
            }
        }
        assert!(Instant::now() < deadline, "serve never wrote its port file");
        if let Ok(Some(status)) = child.0.try_wait() {
            panic!("serve exited before binding: {status}");
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    (child, addr)
}

/// Spawn a node process, optionally durable on `wal_dir`.
fn spawn_node(wal_dir: Option<&Path>, port_file: &Path) -> (Reaper, SocketAddr) {
    match wal_dir {
        Some(dir) => {
            let dir = dir.to_str().expect("utf8 wal dir");
            spawn_serve(&["--wal-dir", dir, "--wal-sync", "always"], port_file)
        }
        None => spawn_serve(&[], port_file),
    }
}

/// Spawn a router process over `nodes`.
fn spawn_router(nodes: &[SocketAddr], port_file: &Path) -> (Reaper, SocketAddr) {
    let list = nodes
        .iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(",");
    spawn_serve(&["--role", "router", "--nodes", &list], port_file)
}

/// The oracle: run `records` through an in-process pipeline for `key` and
/// return the release events (cadence releases plus the drain flush) the
/// serve wire must reproduce — through any number of routers.
fn expected_events(key: &str, records: &[ItemSet]) -> Vec<String> {
    let cfg = cluster_cfg();
    let mut pipe = cfg.pipeline_for(key);
    let mut events = Vec::new();
    for items in records {
        pipe.advance(butterfly_repro::common::Transaction::new(0, items.clone()));
        if pipe.window().is_full() && pipe.since_publish() >= cfg.every {
            let r = pipe.publish_now().expect("full window");
            events.push(release_event(key, r.stream_len, &r.release).to_string());
        }
    }
    if let Some(r) = pipe.flush() {
        events.push(release_event(key, r.stream_len, &r.release).to_string());
    }
    events
}

/// Sum `processed` across every *reachable* node in a router `stats` reply.
fn cluster_processed(stats: &Json) -> u64 {
    stats
        .get("nodes")
        .and_then(Json::as_array)
        .expect("router stats carry a nodes array")
        .iter()
        .filter(|n| n.get("ok") == Some(&Json::Bool(true)))
        .flat_map(|n| {
            n.get("stats")
                .and_then(|s| s.get("per_shard"))
                .and_then(Json::as_array)
                .into_iter()
                .flatten()
        })
        .map(|s| s.get("processed").and_then(Json::as_u64).unwrap_or(0))
        .sum()
}

/// Block until the cluster behind `control` has processed `want` records.
fn wait_cluster_processed(control: &mut Client, want: u64) {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let stats = control.request(&Request::Stats).expect("router stats");
        let processed = cluster_processed(&stats);
        if processed >= want {
            return;
        }
        assert!(Instant::now() < deadline, "stuck at {processed}/{want}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Drain a subscriber until its stream's `closed` event, collecting the
/// release events as canonical JSON strings.
fn collect_until_closed(sub: &mut Client) -> Vec<String> {
    let mut received = Vec::new();
    loop {
        let event = sub
            .next_event()
            .expect("subscriber read")
            .expect("closed event before EOF");
        if event.get("event").and_then(Json::as_str) == Some("closed") {
            break;
        }
        received.push(event.to_string());
    }
    received
}

fn records_for(seed: u64, n: usize) -> Vec<ItemSet> {
    DatasetProfile::WebView1
        .source(seed)
        .take_vec(n)
        .into_iter()
        .map(|t| t.into_items())
        .collect()
}

/// Two nodes behind a router, four stream keys, live subscribers attached
/// through the router before ingest: every key's event stream must be
/// byte-identical to the in-process oracle, and the router's merged stats
/// must expose the cluster shape and per-node forwarding ledger.
#[test]
fn router_streams_byte_identical_to_in_process() {
    let tag = format!("bfly-fed-live-{}", std::process::id());
    let pf = |name: &str| std::env::temp_dir().join(format!("{tag}-{name}.port"));

    let (_node_a, addr_a) = spawn_node(None, &pf("a"));
    let (_node_b, addr_b) = spawn_node(None, &pf("b"));
    let (router, router_addr) = spawn_router(&[addr_a, addr_b], &pf("r"));

    // Keys chosen blind — placement decides ownership. Assert up front the
    // population actually spans both nodes, or the test proves nothing
    // about forwarding.
    let keys = ["alpha", "beta", "gamma", "delta"];
    let map = ClusterMap::federated(1, vec![addr_a, addr_b], SHARDS);
    let owners: std::collections::BTreeSet<usize> =
        keys.iter().map(|k| map.owner_of(k).node).collect();
    assert_eq!(owners.len(), 2, "test keys must span both nodes");

    let mut subs: Vec<Client> = keys
        .iter()
        .map(|&key| {
            let mut sub = Client::connect(router_addr).expect("subscriber connect");
            let ack = sub
                .request(&Request::Subscribe {
                    stream: key.into(),
                    frame: FrameMode::Json,
                    from: None,
                })
                .expect("subscribe ack through router");
            assert_eq!(ack.get("ok"), Some(&Json::Bool(true)), "got {ack}");
            sub
        })
        .collect();

    let mut client = Client::connect(router_addr).expect("ingest connect");
    let per_key: Vec<Vec<ItemSet>> = (0..keys.len())
        .map(|i| records_for(13 + i as u64, 205))
        .collect();
    for (key, records) in keys.iter().zip(&per_key) {
        let reply = client
            .request(&Request::Ingest {
                stream: (*key).into(),
                batch: records.clone(),
            })
            .expect("ingest through router");
        assert_eq!(
            reply.get("accepted").and_then(Json::as_u64),
            Some(205),
            "got {reply}"
        );
    }

    // The merged stats document: role, cluster shape, both nodes reachable,
    // a forwarding ledger entry per node.
    let stats = client.request(&Request::Stats).expect("router stats");
    assert_eq!(stats.get("role").and_then(Json::as_str), Some("router"));
    let cluster = stats.get("cluster").expect("cluster block");
    assert_eq!(cluster.get("nodes").and_then(Json::as_u64), Some(2));
    assert_eq!(
        cluster.get("slots").and_then(Json::as_u64),
        Some(2 * SHARDS as u64)
    );
    let nodes = stats.get("nodes").and_then(Json::as_array).expect("nodes");
    assert!(nodes.iter().all(|n| n.get("ok") == Some(&Json::Bool(true))));
    assert_eq!(
        stats
            .get("forward")
            .and_then(Json::as_array)
            .map(<[Json]>::len),
        Some(2)
    );

    // Drain the whole cluster through the router; every subscriber rides
    // its node's final releases and `closed` through the relay.
    client.request(&Request::Shutdown).expect("shutdown reply");
    for (key, (sub, records)) in keys.iter().zip(subs.iter_mut().zip(&per_key)) {
        let received = collect_until_closed(sub);
        assert_eq!(
            received,
            expected_events(key, records),
            "stream {key} through the router diverged from the oracle"
        );
    }

    let mut router = router;
    let status = router.0.wait().expect("router exit");
    assert!(status.success(), "router exited {status}");
}

/// Kill one node mid-run: ingest for its keys must answer with an explicit
/// `unavailable` error (and count in the router's per-key ledger), the
/// surviving node's stream must stay byte-identical to the oracle through
/// WAL catch-up *and* live drain, and the next cluster incarnation must
/// replay the dead node's WAL and serve its stream byte-identically too.
#[test]
fn kill_one_node_survivor_identical_and_wal_rejoin() {
    let tag = format!("bfly-fed-kill-{}", std::process::id());
    let tmp = std::env::temp_dir();
    let wal_a = tmp.join(format!("{tag}-wal-a"));
    let wal_b = tmp.join(format!("{tag}-wal-b"));
    let _ = std::fs::remove_dir_all(&wal_a);
    let _ = std::fs::remove_dir_all(&wal_b);
    let pf = |name: &str| tmp.join(format!("{tag}-{name}.port"));

    let (node_a, addr_a) = spawn_node(Some(&wal_a), &pf("a"));
    let (node_b, addr_b) = spawn_node(Some(&wal_b), &pf("b"));
    let (router, router_addr) = spawn_router(&[addr_a, addr_b], &pf("r"));

    // One tracked key per node: the victim key lives on node B (killed
    // mid-run), the survivor key on node A.
    let map = ClusterMap::federated(1, vec![addr_a, addr_b], SHARDS);
    let candidates: Vec<String> = (0..32).map(|i| format!("s{i}")).collect();
    let victim_key = candidates
        .iter()
        .find(|k| map.owner_of(k).node == 1)
        .expect("some key lands on node B")
        .clone();
    let survivor_key = candidates
        .iter()
        .find(|k| map.owner_of(k).node == 0)
        .expect("some key lands on node A")
        .clone();
    let victim_records = records_for(13, 205);
    let survivor_records = records_for(14, 205);

    // Phase 1: 155 records per key through the router, then SIGKILL node B.
    let mut client = Client::connect(router_addr).expect("connect router");
    for (key, records) in [
        (&victim_key, &victim_records),
        (&survivor_key, &survivor_records),
    ] {
        client
            .request(&Request::Ingest {
                stream: key.clone(),
                batch: records[..155].to_vec(),
            })
            .expect("phase-1 ingest");
    }
    wait_cluster_processed(&mut client, 310);
    drop(node_b); // Reaper: SIGKILL, no drain.

    // The survivor's remaining records sail through...
    let reply = client
        .request(&Request::Ingest {
            stream: survivor_key.clone(),
            batch: survivor_records[155..].to_vec(),
        })
        .expect("survivor ingest");
    assert_eq!(
        reply.get("accepted").and_then(Json::as_u64),
        Some(50),
        "got {reply}"
    );
    // ...while the victim's keys answer with explicit unavailability (the
    // router's retry + connect both fail, so this takes one round trip).
    let reply = client
        .request(&Request::Ingest {
            stream: victim_key.clone(),
            batch: victim_records[155..].to_vec(),
        })
        .expect("victim ingest gets an error reply, not a hang");
    let err = reply
        .get("error")
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("expected error reply, got {reply}"));
    assert!(err.contains("unavailable"), "got {err}");

    let stats = client.request(&Request::Stats).expect("router stats");
    let nodes = stats.get("nodes").and_then(Json::as_array).expect("nodes");
    assert_eq!(nodes[0].get("ok"), Some(&Json::Bool(true)), "got {stats}");
    assert_eq!(nodes[1].get("ok"), Some(&Json::Bool(false)), "got {stats}");
    let unavailable = stats.get("unavailable").expect("unavailable ledger");
    assert!(
        unavailable.get(&victim_key).and_then(Json::as_u64) >= Some(1),
        "got {stats}"
    );

    // The survivor's full stream — WAL catch-up for the published windows,
    // live drain for the flush — must be byte-identical to the oracle, as
    // if the kill never happened. Only node A is reachable now, so the
    // cluster total is its 205.
    wait_cluster_processed(&mut client, 205);
    let mut sub = Client::connect(router_addr).expect("subscriber connect");
    let ack = sub
        .request(&Request::Subscribe {
            stream: survivor_key.clone(),
            frame: FrameMode::Json,
            from: Some(CatchUp::Earliest),
        })
        .expect("subscribe ack through router");
    assert_eq!(ack.get("ok"), Some(&Json::Bool(true)), "got {ack}");
    client.request(&Request::Shutdown).expect("shutdown reply");
    assert_eq!(
        collect_until_closed(&mut sub),
        expected_events(&survivor_key, &survivor_records),
        "survivor stream diverged after the kill"
    );
    let mut router = router;
    let status = router.0.wait().expect("router exit");
    assert!(status.success(), "router exited {status}");
    drop(node_a); // drained via the forwarded shutdown; reap.

    // Next incarnation: fresh ports, same WAL dirs. Node B must replay the
    // four publications it logged before dying, and its stream — finished
    // through the new router — must match the oracle byte for byte.
    let (_node_a2, addr_a2) = spawn_node(Some(&wal_a), &pf("a2"));
    let (_node_b2, addr_b2) = spawn_node(Some(&wal_b), &pf("b2"));
    let (_router2, router_addr) = spawn_router(&[addr_a2, addr_b2], &pf("r2"));
    let map = ClusterMap::federated(1, vec![addr_a2, addr_b2], SHARDS);
    assert_eq!(
        map.owner_of(&victim_key).node,
        1,
        "placement is address-independent, so the victim key stays on node B"
    );

    let mut client = Client::connect(router_addr).expect("connect new router");
    let stats = client.request(&Request::Stats).expect("router stats");
    let nodes = stats.get("nodes").and_then(Json::as_array).expect("nodes");
    assert_eq!(
        nodes[1]
            .get("stats")
            .and_then(|s| s.get("recovered_windows"))
            .and_then(Json::as_u64),
        Some(4),
        "node B must replay the publications at 120…150: {stats}"
    );

    client
        .request(&Request::Ingest {
            stream: victim_key.clone(),
            batch: victim_records[155..].to_vec(),
        })
        .expect("victim ingest after rejoin");
    // Fresh processes, fresh counters: the 50 rejoin records are all the
    // new incarnation counts.
    wait_cluster_processed(&mut client, 50);
    let mut sub = Client::connect(router_addr).expect("subscriber connect");
    let ack = sub
        .request(&Request::Subscribe {
            stream: victim_key.clone(),
            frame: FrameMode::Json,
            from: Some(CatchUp::Earliest),
        })
        .expect("subscribe ack through new router");
    assert_eq!(ack.get("ok"), Some(&Json::Bool(true)), "got {ack}");
    client.request(&Request::Shutdown).expect("shutdown reply");
    assert_eq!(
        collect_until_closed(&mut sub),
        expected_events(&victim_key, &victim_records),
        "victim stream diverged across the kill + WAL rejoin"
    );

    let _ = std::fs::remove_dir_all(&wal_a);
    let _ = std::fs::remove_dir_all(&wal_b);
}
