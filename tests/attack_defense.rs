//! Integration: the attacks of §IV succeed against raw output and are
//! blunted by Butterfly, including the averaging attack of Prior Knowledge 2.

use butterfly_repro::butterfly::{BiasScheme, PrivacySpec, Publisher};
use butterfly_repro::common::fixtures::fig2_window;
use butterfly_repro::common::Database;
use butterfly_repro::common::{ItemSet, Pattern};
use butterfly_repro::datagen::DatasetProfile;
use butterfly_repro::inference::adversary::{averaging_attack, estimate_pattern};
use butterfly_repro::inference::{
    find_inter_window_breaches, find_intra_window_breaches, GroundTruth,
};
use butterfly_repro::mining::{Apriori, FrequentItemsets};

#[test]
fn raw_output_leaks_and_examples_reproduce() {
    // Example 3 (intra) at C=3/K=1 and Example 5 (inter) at C=4/K=1.
    let curr_db = fig2_window(12);
    let intra_view = Apriori::new(3).mine(&curr_db);
    let intra = find_intra_window_breaches(intra_view.as_map(), 1);
    assert!(intra
        .iter()
        .any(|b| b.pattern == "c¬a¬b".parse::<Pattern>().unwrap()));

    let prev_view = Apriori::new(4).mine(&fig2_window(11));
    let curr_view = Apriori::new(4).mine(&curr_db);
    assert!(find_intra_window_breaches(curr_view.as_map(), 1).is_empty());
    let inter = find_inter_window_breaches(prev_view.as_map(), curr_view.as_map(), 4, 1, 1);
    assert!(inter
        .iter()
        .any(|b| b.pattern == "c¬a¬b".parse::<Pattern>().unwrap()));
}

#[test]
fn perturbation_inflates_adversary_error_on_average() {
    // Against raw output the derivation is exact (error 0). Against
    // Butterfly the mean squared relative error must reach the δ floor.
    let db = fig2_window(12);
    let frequent = Apriori::new(3).mine(&db);
    let spec = PrivacySpec::new(3, 1, 0.9, 0.8);
    let base: ItemSet = "c".parse().unwrap();
    let span: ItemSet = "abc".parse().unwrap();
    let truth = 1.0; // T(c¬a¬b)

    let mut total_sq_err = 0.0;
    let trials = 400;
    for seed in 0..trials {
        let mut publisher = Publisher::new(spec, BiasScheme::Basic, seed);
        let release = publisher.publish(&frequent);
        let est = estimate_pattern(&release.view(), &base, &span)
            .unwrap()
            .expect("all lattice members published");
        total_sq_err += (truth - est) * (truth - est);
    }
    let mse = total_sq_err / trials as f64;
    // Theory: Var = 4σ² (four lattice members); prig = Var/T² ≥ δ.
    let floor = spec.delta() * truth * truth;
    assert!(
        mse >= floor,
        "adversary MSE {mse} below privacy floor {floor}"
    );
    assert!(
        mse >= 3.0 * spec.sigma2(),
        "uncertainty did not accumulate across the lattice: {mse}"
    );
}

#[test]
fn republication_defeats_averaging_attack() {
    // A publisher that redraws noise every window lets the adversary average
    // her way to the truth; Butterfly's pinned republication does not.
    let spec = PrivacySpec::new(25, 5, 0.04, 1.0);
    let frequent = FrequentItemsets::new(vec![("ab".parse::<ItemSet>().unwrap(), 40u64)]);
    let truth = 40.0;

    // Butterfly: one publisher observed over 200 windows of unchanged data.
    let mut publisher = Publisher::new(spec, BiasScheme::Basic, 5);
    let pinned: Vec<i64> = (0..200)
        .map(|_| {
            publisher
                .publish(&frequent)
                .get(&"ab".parse().unwrap())
                .unwrap()
                .sanitized
        })
        .collect();
    assert!(
        pinned.windows(2).all(|w| w[0] == w[1]),
        "sanitized value moved despite unchanged support"
    );

    // Naive redrawing publisher (fresh Publisher per window ≈ no cache).
    let fresh: Vec<i64> = (0..200)
        .map(|seed| {
            Publisher::new(spec, BiasScheme::Basic, 1000 + seed)
                .publish(&frequent)
                .get(&"ab".parse().unwrap())
                .unwrap()
                .sanitized
        })
        .collect();

    let err_fresh = (averaging_attack(&fresh) - truth).abs();
    // Fresh noise averages out (law of large numbers); the pinned value's
    // error stays at its single-draw magnitude unless the draw was lucky.
    assert!(
        err_fresh < 0.6,
        "averaging over fresh noise failed: {err_fresh}"
    );
    // The pinned sequence gives the adversary exactly one observation's
    // worth of information: its average equals the first draw.
    assert_eq!(averaging_attack(&pinned), pinned[0] as f64);
}

#[test]
fn stream_scale_breach_hunt_is_sound() {
    // On a real-sized window, every intra-window breach the engine reports
    // must be a true vulnerable pattern of the window database.
    let mut stream = DatasetProfile::WebView1.source(21);
    let txs: Vec<_> = (0..1500).map(|_| stream.next_transaction()).collect();
    let db = Database::from_records(txs);
    let frequent = Apriori::new(25).mine(&db);
    let breaches = find_intra_window_breaches(frequent.as_map(), 5);
    // Verify against the vertical tid-bitmap oracle rather than re-scanning
    // all 1500 records per pattern.
    let mut oracle = GroundTruth::of_database(&db);
    for b in &breaches {
        let truth = oracle.pattern_support(&b.pattern);
        assert_eq!(truth, b.support, "false breach report for {}", b.pattern);
        assert!((1..=5).contains(&truth));
    }
}
