//! Differential suite for the tidmap kernel levels: the scalar reference,
//! the unrolled-lane path, and the `std::arch` fast path (when the host
//! has it) must produce bit-identical supports on random sliding windows —
//! including the steady state where tids wrap the ring boundary — and the
//! full mining+breach pipeline must not care which level is active or how
//! many pool threads run it.
//!
//! The kernel level is a process-wide switch, so every test here holds
//! `LEVEL_LOCK` while it forces levels and restores auto-detection before
//! releasing it.

use bfly_bench::{collect_truths, ExperimentConfig};
use butterfly_repro::common::rng::{Rng, SmallRng};
use butterfly_repro::common::tidmap::kernel::{self, Level};
use butterfly_repro::common::{
    pool, ItemSet, Pattern, SlidingWindow, Support, TidScratch, VerticalIndex,
};
use butterfly_repro::datagen::{DatasetProfile, QuestConfig, QuestGenerator};
use butterfly_repro::mining::BackendKind;
use std::sync::{Mutex, MutexGuard};

static LEVEL_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    // A poisoned lock only means another test failed while holding it.
    LEVEL_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Every level worth testing on this host: the scalar reference, the
/// unrolled lanes, the detected fast path (degrades to unrolled where the
/// host lacks it), and auto-detection itself.
const LEVELS: [Option<Level>; 4] = [
    Some(Level::Scalar),
    Some(Level::Unrolled),
    Some(Level::Simd),
    None,
];

fn arb_itemset(rng: &mut SmallRng, universe: u32) -> ItemSet {
    let len = 1 + rng.gen_range_usize(4);
    ItemSet::from_ids((0..len).map(|_| rng.gen_range_usize(universe as usize) as u32))
}

/// Walk a window over a quest stream under the given kernel level,
/// checking every support against the naive scan and returning a
/// fingerprint of all counted values for cross-level comparison.
fn window_walk_fingerprint(level: Option<Level>) -> Vec<Support> {
    kernel::force_level(level);
    let mut fingerprint = Vec::new();
    let mut rng = SmallRng::seed_from_u64(0x5ca1ab1e);
    let mut gen = QuestGenerator::new(QuestConfig::default(), 404);
    // Window 24 over 120 slides: tids wrap the ring boundary five times.
    let mut window = SlidingWindow::new(24);
    let mut index = VerticalIndex::new(24);
    let mut scratch = TidScratch::new();
    for step in 0..120 {
        let delta = window.slide(gen.next_transaction());
        index.apply(&delta);
        let db = window.database();
        for _ in 0..8 {
            let q = arb_itemset(&mut rng, 40);
            let got = index.support(&q, &mut scratch);
            assert_eq!(
                got,
                db.support(&q),
                "positive support of {q} diverged from scan at step {step} under {level:?}"
            );
            fingerprint.push(got);
        }
        for _ in 0..8 {
            let span = arb_itemset(&mut rng, 40);
            if span.len() < 2 {
                continue;
            }
            let mask = 1 + rng.gen_range_usize((1 << span.len()) - 2) as u32;
            let base = span.subset_by_mask(mask);
            let p = Pattern::from_lattice(&base, &span).expect("base ⊂ span");
            let got = index.pattern_support(&p, &mut scratch);
            assert_eq!(
                got,
                db.pattern_support(&p),
                "pattern support of {p} diverged from scan at step {step} under {level:?}"
            );
            fingerprint.push(got);
        }
    }
    fingerprint
}

#[test]
fn kernel_levels_agree_with_scan_on_wrapping_windows() {
    let _guard = lock();
    let baseline = window_walk_fingerprint(Some(Level::Scalar));
    assert!(
        baseline.iter().any(|&s| s > 0),
        "all queried supports were zero; the differential would be vacuous"
    );
    for level in LEVELS {
        let fp = window_walk_fingerprint(level);
        assert_eq!(
            fp, baseline,
            "support fingerprint diverged from scalar under {level:?}"
        );
    }
    kernel::force_level(None);
}

#[test]
fn pipeline_supports_identical_across_levels_and_threads() {
    let _guard = lock();
    let cfg = |threads: usize| ExperimentConfig {
        profile: DatasetProfile::WebView1,
        window: 250,
        c: 10,
        k: 3,
        windows: 6,
        seed: 7,
        backend: BackendKind::Moment,
        threads,
    };
    kernel::force_level(Some(Level::Scalar));
    let baseline = collect_truths(&cfg(1));
    assert!(
        baseline.iter().any(|t| !t.breaches.is_empty()),
        "pipeline found no breaches; the differential would be vacuous"
    );
    for level in LEVELS {
        for threads in [1usize, 2, 8] {
            kernel::force_level(level);
            let run = collect_truths(&cfg(threads));
            assert_eq!(run.len(), baseline.len());
            for (i, (a, b)) in run.iter().zip(&baseline).enumerate() {
                assert_eq!(
                    a.closed, b.closed,
                    "window {i}: mining output changed under {level:?} at {threads} threads"
                );
                assert_eq!(
                    a.breaches, b.breaches,
                    "window {i}: breach list changed under {level:?} at {threads} threads"
                );
            }
        }
    }
    kernel::force_level(None);
    pool::set_threads(0);
}
