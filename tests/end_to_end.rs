//! Cross-crate integration: the full Butterfly deployment honours its
//! (ε, δ) contract over real streaming workloads.

use butterfly_repro::butterfly::metrics::{avg_pred, avg_prig};
use butterfly_repro::butterfly::{BiasScheme, PrivacySpec, Publisher, StreamPipeline};
use butterfly_repro::datagen::DatasetProfile;
use butterfly_repro::inference::find_intra_window_breaches;
use butterfly_repro::mining::closed::expand_closed;

/// Drive `windows` published windows and return (mean pred, mean prig over
/// windows that had breaches).
fn run(scheme: BiasScheme, delta: f64, ppr: f64, windows: usize, seed: u64) -> (f64, Option<f64>) {
    let spec = PrivacySpec::from_ppr(25, 5, ppr, delta);
    let publisher = Publisher::new(spec, scheme, seed);
    let mut pipeline = StreamPipeline::new(1000, publisher);
    let mut stream = DatasetProfile::WebView1.source(seed);
    for _ in 0..999 {
        pipeline.advance(stream.next_transaction());
    }
    let mut pred_sum = 0.0;
    let mut prig_sum = 0.0;
    let mut prig_windows = 0usize;
    for _ in 0..windows {
        for _ in 0..50 {
            pipeline.advance(stream.next_transaction());
        }
        let release = pipeline.publish_now().expect("window is full");
        pred_sum += avg_pred(&release.release);
        // The evaluation oracle: expand closed → full frequent view, find
        // the inferable vulnerable patterns, measure the adversary's error.
        let full = expand_closed(&release.closed);
        let breaches = find_intra_window_breaches(full.as_map(), spec.k());
        if let Some(p) = avg_prig(&breaches, &release.release.view(), None) {
            prig_sum += p;
            prig_windows += 1;
        }
    }
    (
        pred_sum / windows as f64,
        (prig_windows > 0).then(|| prig_sum / prig_windows as f64),
    )
}

#[test]
fn precision_budget_respected_by_all_schemes() {
    for scheme in BiasScheme::paper_variants(2) {
        let (pred, _) = run(scheme, 0.4, 0.04, 30, 11);
        let epsilon = 0.4 * 0.04;
        assert!(
            pred <= epsilon * 1.10,
            "{}: avg_pred {pred} above ε {epsilon}",
            scheme.name()
        );
    }
}

#[test]
fn privacy_floor_met_where_breaches_exist() {
    // avg_prig ≥ δ whenever the analysis finds inferable vulnerable
    // patterns (paper Fig. 4, top row).
    for scheme in [BiasScheme::Basic, BiasScheme::RatioPreserving] {
        for delta in [0.4, 1.0] {
            let (_, prig) = run(scheme, delta, 0.04, 30, 7);
            if let Some(p) = prig {
                assert!(
                    p >= delta * 0.9,
                    "{} at δ={delta}: avg_prig {p} below floor",
                    scheme.name()
                );
            }
        }
    }
}

#[test]
fn basic_scheme_has_lowest_precision_loss() {
    // The paper's Fig. 4 bottom row: basic trades no bias for semantics, so
    // its precision loss is the smallest of the four variants.
    let (basic, _) = run(BiasScheme::Basic, 0.4, 0.4, 25, 3);
    let (ratio, _) = run(BiasScheme::RatioPreserving, 0.4, 0.4, 25, 3);
    let (hybrid, _) = run(
        BiasScheme::Hybrid {
            lambda: 0.4,
            gamma: 2,
        },
        0.4,
        0.4,
        25,
        3,
    );
    assert!(
        basic <= ratio + 1e-6 && basic <= hybrid + 1e-6,
        "basic={basic} ratio={ratio} hybrid={hybrid}"
    );
}

#[test]
fn pipeline_is_deterministic_given_seeds() {
    let a = run(BiasScheme::Basic, 0.4, 0.04, 5, 123);
    let b = run(BiasScheme::Basic, 0.4, 0.04, 5, 123);
    assert_eq!(a, b);
}
