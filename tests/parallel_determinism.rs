//! Integration: the parallel execution layer never changes results.
//!
//! The full fig4-style pipeline — ground-truth collection (parallel breach
//! enumeration), sweep-cell evaluation, and a stateful `Publisher` release
//! sequence — must produce identical truths, breach lists, releases, and
//! metrics at every thread count. This is the workspace's determinism
//! contract: thread count is a throughput knob, never a semantics knob.

use bfly_bench::{collect_truths, evaluate_cells, EvalResult, ExperimentConfig, WindowTruth};
use butterfly_repro::butterfly::{BiasScheme, PrivacySpec, Publisher};
use butterfly_repro::common::pool;
use butterfly_repro::common::{ItemSet, SanitizedSupport, Support};
use butterfly_repro::datagen::DatasetProfile;
use butterfly_repro::mining::BackendKind;

/// One published window, flattened into plain comparable values.
type FlatRelease = Vec<(ItemSet, Support, SanitizedSupport)>;

struct PipelineOutput {
    truths: Vec<WindowTruth>,
    cells: Vec<EvalResult>,
    releases: Vec<FlatRelease>,
}

/// Run the whole pipeline at a pinned thread count. The config keeps
/// `threads` so `collect_truths` itself exercises `apply_threads`.
fn run_pipeline(threads: usize) -> PipelineOutput {
    let cfg = ExperimentConfig {
        profile: DatasetProfile::WebView1,
        window: 300,
        c: 10,
        k: 3,
        windows: 8,
        seed: 7,
        backend: BackendKind::Moment,
        threads,
    };
    let truths = collect_truths(&cfg);

    let spec = PrivacySpec::new(cfg.c, cfg.k, 0.1, 0.5);
    let sweep = vec![
        (spec, BiasScheme::Basic, 1u64),
        (spec, BiasScheme::RatioPreserving, 2),
        (spec, BiasScheme::OrderPreserving { gamma: 2 }, 3),
        (
            spec,
            BiasScheme::Hybrid {
                lambda: 0.4,
                gamma: 2,
            },
            4,
        ),
    ];
    let cells = evaluate_cells(&truths, &sweep);

    // A deployed release sequence: one stateful publisher carrying its
    // republication cache across all windows (the order DP runs inside).
    let mut publisher = Publisher::new(
        spec,
        BiasScheme::Hybrid {
            lambda: 0.4,
            gamma: 2,
        },
        99,
    );
    let releases = truths
        .iter()
        .map(|t| {
            publisher
                .publish(&t.closed)
                .iter()
                .map(|e| (e.itemset().clone(), e.true_support, e.sanitized))
                .collect()
        })
        .collect();

    PipelineOutput {
        truths,
        cells,
        releases,
    }
}

#[test]
fn threads_do_not_change_results() {
    let baseline = run_pipeline(1);
    assert!(
        baseline.truths.iter().any(|t| !t.breaches.is_empty()),
        "pipeline found no breaches; the determinism check would be vacuous"
    );

    for threads in [2usize, 8] {
        let run = run_pipeline(threads);
        assert_eq!(run.truths.len(), baseline.truths.len());
        for (i, (a, b)) in run.truths.iter().zip(&baseline.truths).enumerate() {
            assert_eq!(
                a.closed, b.closed,
                "window {i}: mining output changed at {threads} threads"
            );
            assert_eq!(
                a.breaches, b.breaches,
                "window {i}: breach list changed at {threads} threads"
            );
        }
        for (i, (a, b)) in run.cells.iter().zip(&baseline.cells).enumerate() {
            // Bit-exact, not approximate: the reductions are ordered.
            assert_eq!(a.avg_pred.to_bits(), b.avg_pred.to_bits(), "cell {i} pred");
            assert_eq!(a.avg_prig.to_bits(), b.avg_prig.to_bits(), "cell {i} prig");
            assert_eq!(a.avg_ropp.to_bits(), b.avg_ropp.to_bits(), "cell {i} ropp");
            assert_eq!(a.avg_rrpp.to_bits(), b.avg_rrpp.to_bits(), "cell {i} rrpp");
            assert_eq!(a.prig_windows, b.prig_windows, "cell {i} prig_windows");
            assert_eq!(a.breaches, b.breaches, "cell {i} breach count");
        }
        assert_eq!(
            run.releases, baseline.releases,
            "release sequence changed at {threads} threads"
        );
    }

    // Leave the process-wide pool setting as other tests expect it.
    pool::set_threads(0);
}
