//! Crash-recovery integration tests against the real `butterfly serve`
//! binary: SIGKILL the server mid-stream, restart it on the same
//! `--wal-dir`, and require the restarted process to serve a subscriber
//! stream byte-identical to a run that never crashed.
//!
//! The uncrashed reference is the in-process pipeline over the same
//! records — the same oracle the network determinism suite uses — so the
//! comparison spans the crash, the replay, the log-served catch-up, and
//! the drain flush in one concatenated byte-equality.

use butterfly_repro::common::{ItemSet, Json};
use butterfly_repro::datagen::DatasetProfile;
use butterfly_repro::serve::protocol::{release_event, CatchUp};
use butterfly_repro::serve::{Client, FrameMode, Request, ServeConfig};
use std::io::Read;
use std::net::SocketAddr;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Kills the child on drop so a failing assertion never leaks a server.
struct Reaper(Child);

impl Drop for Reaper {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Start `butterfly serve` on an ephemeral port with the WAL at `wal_dir`,
/// pinned to `threads` compute threads, and block until the `--port-file`
/// handshake delivers the bound address.
fn spawn_serve(wal_dir: &Path, port_file: &Path, threads: usize) -> (Reaper, SocketAddr) {
    let _ = std::fs::remove_file(port_file);
    let child = Command::new(env!("CARGO_BIN_EXE_butterfly"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--shards",
            "2",
            "--window",
            "120",
            "--min-support",
            "15",
            "--vulnerable",
            "3",
            "--epsilon",
            "0.016",
            "--delta",
            "0.4",
            "--every",
            "10",
            "--seed",
            "42",
            "--wal-sync",
            "always",
        ])
        .arg("--wal-dir")
        .arg(wal_dir)
        .arg("--port-file")
        .arg(port_file)
        .env("BFLY_THREADS", threads.to_string())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn butterfly serve");
    let mut child = Reaper(child);
    let deadline = Instant::now() + Duration::from_secs(20);
    let addr = loop {
        if let Ok(mut f) = std::fs::File::open(port_file) {
            let mut text = String::new();
            // The write is atomic (temp + rename), so any visible file
            // holds the complete address line.
            if f.read_to_string(&mut text).is_ok() {
                if let Ok(addr) = text.trim().parse::<SocketAddr>() {
                    break addr;
                }
            }
        }
        assert!(Instant::now() < deadline, "serve never wrote its port file");
        if let Ok(Some(status)) = child.0.try_wait() {
            panic!("serve exited before binding: {status}");
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    (child, addr)
}

/// Block until the server's per-shard `processed` counters total at least
/// `want` records.
fn wait_processed(control: &mut Client, want: u64) {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let stats = control.request(&Request::Stats).expect("stats reply");
        let processed: u64 = stats
            .get("per_shard")
            .and_then(Json::as_array)
            .expect("per_shard")
            .iter()
            .map(|s| s.get("processed").and_then(Json::as_u64).unwrap_or(0))
            .sum();
        if processed >= want {
            return;
        }
        assert!(Instant::now() < deadline, "stuck at {processed}/{want}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The scenario at one compute-thread count:
///
/// 1. serve with `--wal-sync always`, ingest 155 of 205 records, and
///    SIGKILL the process — no drain, no final fsync beyond the policy's.
/// 2. restart on the same `--wal-dir`; the replay must report the four
///    already-published windows recovered.
/// 3. ingest the remaining 50 records, subscribe `from: earliest`, drain
///    through shutdown, and require the concatenated event stream — nine
///    catch-up releases plus the flush at 205 — byte-identical to the
///    in-process pipeline over the same 205 records.
fn crash_recover_roundtrip(threads: usize) {
    let tag = format!("bfly-wal-recovery-{}-t{threads}", std::process::id());
    let wal_dir = std::env::temp_dir().join(&tag);
    let port_file = std::env::temp_dir().join(format!("{tag}.port"));
    let _ = std::fs::remove_dir_all(&wal_dir);

    let records: Vec<ItemSet> = DatasetProfile::WebView1
        .source(13)
        .take_vec(205)
        .into_iter()
        .map(|t| t.into_items())
        .collect();

    // Uncrashed reference: config mirrors the serve flags above.
    let cfg = ServeConfig {
        shards: 2,
        window: 120,
        c: 15,
        k: 3,
        epsilon: 0.016,
        delta: 0.4,
        every: 10,
        seed: 42,
        ..ServeConfig::default()
    };
    let mut pipe = cfg.pipeline_for("alpha");
    let mut expected: Vec<String> = Vec::new();
    for items in &records {
        pipe.advance(butterfly_repro::common::Transaction::new(0, items.clone()));
        if pipe.window().is_full() && pipe.since_publish() >= cfg.every {
            let r = pipe.publish_now().expect("full window");
            expected.push(release_event("alpha", r.stream_len, &r.release).to_string());
        }
    }
    let flush = pipe.flush().expect("5 pending records flush");
    expected.push(release_event("alpha", flush.stream_len, &flush.release).to_string());
    assert_eq!(expected.len(), 10, "cadence at 120…200 plus flush at 205");

    // Phase 1: ingest 155 records, then SIGKILL. Waiting for 155 processed
    // guarantees the publications at 120…150 completed (each publication
    // finishes before the *next* record's counter tick), while the kill
    // still lands with no drain and the log mid-segment.
    let (server, addr) = spawn_serve(&wal_dir, &port_file, threads);
    let mut client = Client::connect(addr).expect("connect");
    client
        .request(&Request::Ingest {
            stream: "alpha".into(),
            batch: records[..155].to_vec(),
        })
        .expect("phase-1 ingest");
    wait_processed(&mut client, 155);
    drop(server); // Reaper: SIGKILL, no drain protocol runs.
    drop(client);

    // Phase 2: restart on the same log.
    let (server, addr) = spawn_serve(&wal_dir, &port_file, threads);
    let mut client = Client::connect(addr).expect("reconnect");
    let stats = client.request(&Request::Stats).expect("stats reply");
    assert_eq!(
        stats.get("recovered_windows").and_then(Json::as_u64),
        Some(4),
        "replay must re-execute the publications at 120…150: {stats}"
    );
    assert!(
        stats.get("uptime_ms").and_then(Json::as_u64).is_some(),
        "got {stats}"
    );

    // Phase 3: finish the stream. The counters started from zero, so the
    // remaining 50 records are what the restarted process counts.
    client
        .request(&Request::Ingest {
            stream: "alpha".into(),
            batch: records[155..].to_vec(),
        })
        .expect("phase-2 ingest");
    wait_processed(&mut client, 50);

    let mut sub = Client::connect(addr).expect("subscriber connect");
    let ack = sub
        .request(&Request::Subscribe {
            stream: "alpha".into(),
            frame: FrameMode::Json,
            from: Some(CatchUp::Earliest),
        })
        .expect("subscribe ack");
    assert_eq!(ack.get("ok"), Some(&Json::Bool(true)), "got {ack}");

    client.request(&Request::Shutdown).expect("shutdown reply");
    let mut received: Vec<String> = Vec::new();
    loop {
        let event = sub
            .next_event()
            .expect("subscriber read")
            .expect("closed event before EOF");
        if event.get("event").and_then(Json::as_str) == Some("closed") {
            break;
        }
        received.push(event.to_string());
    }
    assert_eq!(
        received, expected,
        "stream across the crash diverged from the uncrashed reference"
    );

    drop(server);
    let _ = std::fs::remove_dir_all(&wal_dir);
    let _ = std::fs::remove_file(&port_file);
}

#[test]
fn kill_dash_nine_recovery_single_thread() {
    crash_recover_roundtrip(1);
}

#[test]
fn kill_dash_nine_recovery_two_threads() {
    crash_recover_roundtrip(2);
}

#[test]
fn kill_dash_nine_recovery_eight_threads() {
    crash_recover_roundtrip(8);
}

/// A clean restart (graceful shutdown, then a new process on the same
/// `--wal-dir`) also lands in byte-identical state: the drain's flush
/// publication is in the log, so catch-up serves it, and the restarted
/// pipeline continues the cadence exactly where the stream left off.
#[test]
fn clean_restart_straddles_byte_identically() {
    let tag = format!("bfly-wal-restart-{}", std::process::id());
    let wal_dir = std::env::temp_dir().join(&tag);
    let port_file = std::env::temp_dir().join(format!("{tag}.port"));
    let _ = std::fs::remove_dir_all(&wal_dir);

    let records: Vec<ItemSet> = DatasetProfile::WebView1
        .source(17)
        .take_vec(160)
        .into_iter()
        .map(|t| t.into_items())
        .collect();
    let cfg = ServeConfig {
        shards: 2,
        window: 120,
        c: 15,
        k: 3,
        epsilon: 0.016,
        delta: 0.4,
        every: 10,
        seed: 42,
        ..ServeConfig::default()
    };
    let mut pipe = cfg.pipeline_for("alpha");
    let mut expected: Vec<String> = Vec::new();
    for (i, items) in records.iter().enumerate() {
        pipe.advance(butterfly_repro::common::Transaction::new(0, items.clone()));
        if pipe.window().is_full() && pipe.since_publish() >= cfg.every {
            let r = pipe.publish_now().expect("full window");
            expected.push(release_event("alpha", r.stream_len, &r.release).to_string());
        }
        // The restart splits the stream at 135: the first process drains
        // with 15 records pending, which the uncrashed pipeline never
        // flushes mid-stream — the drain flush at 135 is an *extra*
        // publication the reference must include to stay comparable.
        if i + 1 == 135 {
            if let Some(r) = pipe.flush() {
                expected.push(release_event("alpha", r.stream_len, &r.release).to_string());
            }
        }
    }
    if let Some(r) = pipe.flush() {
        expected.push(release_event("alpha", r.stream_len, &r.release).to_string());
    }

    let (server, addr) = spawn_serve(&wal_dir, &port_file, 2);
    let mut client = Client::connect(addr).expect("connect");
    client
        .request(&Request::Ingest {
            stream: "alpha".into(),
            batch: records[..135].to_vec(),
        })
        .expect("first ingest");
    wait_processed(&mut client, 135);
    client.request(&Request::Shutdown).expect("shutdown reply");
    // Graceful exit: wait for the process itself so the final sync ran.
    let mut server = server;
    let status = server.0.wait().expect("serve exit status");
    assert!(status.success(), "serve exited {status}");
    drop(client);

    let (server, addr) = spawn_serve(&wal_dir, &port_file, 2);
    let mut client = Client::connect(addr).expect("reconnect");
    client
        .request(&Request::Ingest {
            stream: "alpha".into(),
            batch: records[135..].to_vec(),
        })
        .expect("second ingest");
    wait_processed(&mut client, 25);
    let mut sub = Client::connect(addr).expect("subscriber connect");
    sub.request(&Request::Subscribe {
        stream: "alpha".into(),
        frame: FrameMode::Json,
        from: Some(CatchUp::Earliest),
    })
    .expect("subscribe ack");
    client.request(&Request::Shutdown).expect("shutdown reply");
    let mut received: Vec<String> = Vec::new();
    loop {
        let event = sub
            .next_event()
            .expect("subscriber read")
            .expect("closed event before EOF");
        if event.get("event").and_then(Json::as_str) == Some("closed") {
            break;
        }
        received.push(event.to_string());
    }
    assert_eq!(received, expected, "clean restart diverged");

    drop(server);
    let _ = std::fs::remove_dir_all(&wal_dir);
    let _ = std::fs::remove_file(&port_file);
}
