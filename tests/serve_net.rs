//! Integration tests for the `bfly_serve` stream service: network
//! determinism (a TCP round trip is bit-identical to an in-process run),
//! overload shedding, graceful drain, and wire-protocol edge cases.

use butterfly_repro::common::{ItemSet, Json};
use butterfly_repro::datagen::DatasetProfile;
use butterfly_repro::serve::protocol::{closed_event, release_event, SubscriberState};
use butterfly_repro::serve::{Client, FrameMode, IoMode, Request, ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};

fn feasible_cfg() -> ServeConfig {
    ServeConfig {
        shards: 2,
        window: 120,
        c: 15,
        k: 3,
        epsilon: 0.016,
        delta: 0.4,
        every: 100,
        seed: 42,
        ..ServeConfig::default()
    }
}

/// The tentpole guarantee: a seeded stream fed over TCP produces releases
/// byte-identical to the same records pushed through an in-process pipeline
/// built by the same config — interleaved traffic on another stream key and
/// the network boundary change nothing. Also covers the partial-window
/// drain: 130 records with window 120 / every 100 publish at 120 on cadence
/// and at 130 only because shutdown flushes.
#[test]
fn network_releases_bit_identical_to_in_process() {
    let cfg = feasible_cfg();
    let records: Vec<ItemSet> = DatasetProfile::WebView1
        .source(5)
        .take_vec(130)
        .into_iter()
        .map(|t| t.into_items())
        .collect();

    // In-process reference run, through the exact construction path the
    // shard workers use.
    let mut pipe = cfg.pipeline_for("alpha");
    let mut expected: Vec<String> = Vec::new();
    for items in &records {
        pipe.advance(butterfly_repro::common::Transaction::new(0, items.clone()));
        if pipe.window().is_full() && pipe.since_publish() >= cfg.every {
            let r = pipe.publish_now().expect("full window");
            expected.push(release_event("alpha", r.stream_len, &r.release).to_string());
        }
    }
    if let Some(r) = pipe.flush() {
        expected.push(release_event("alpha", r.stream_len, &r.release).to_string());
    }
    assert_eq!(expected.len(), 2, "cadence at 120 plus drain flush at 130");

    // The same records over TCP, with a second tenant interleaved.
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = server.local_addr();
    let mut subscriber = Client::connect(addr).expect("subscriber connect");
    let ack = subscriber
        .request(&Request::Subscribe {
            stream: "alpha".into(),
            frame: FrameMode::Json,
            from: None,
        })
        .expect("subscribe ack");
    assert_eq!(ack.get("ok"), Some(&Json::Bool(true)));

    let mut ingest = Client::connect(addr).expect("ingest connect");
    let mut beta_source = DatasetProfile::Pos.source(9);
    for chunk in records.chunks(25) {
        let reply = ingest
            .request(&Request::Ingest {
                stream: "alpha".into(),
                batch: chunk.to_vec(),
            })
            .expect("ingest reply");
        assert_eq!(
            reply.get("accepted").and_then(Json::as_u64),
            Some(chunk.len() as u64),
            "no shedding expected at default queue caps: {reply}"
        );
        let beta_batch: Vec<ItemSet> = (0..10)
            .map(|_| beta_source.next_transaction().into_items())
            .collect();
        let reply = ingest
            .request(&Request::Ingest {
                stream: "beta".into(),
                batch: beta_batch,
            })
            .expect("beta ingest reply");
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)));
    }
    let reply = ingest.request(&Request::Shutdown).expect("shutdown reply");
    assert_eq!(reply.get("draining"), Some(&Json::Bool(true)));

    // Drain the subscriber to the closed event; everything before it must
    // match the reference run byte for byte.
    let mut received: Vec<String> = Vec::new();
    loop {
        let line = subscriber
            .next_line()
            .expect("subscriber read")
            .expect("closed event must arrive before EOF");
        if line.get("event").and_then(Json::as_str) == Some("closed") {
            assert_eq!(line.to_string(), closed_event("alpha").to_string());
            break;
        }
        received.push(line.to_string());
    }
    assert_eq!(received, expected, "network run diverged from in-process");
    server.join();
}

/// The delta wire end to end: under `snapshot_every = 4` a subscriber that
/// joins mid-stream — after two publications it never saw — syncs on the
/// next full snapshot, rides `release_delta` events from there, and ends up
/// with exactly the state an always-connected subscriber (and the
/// in-process pipeline) has.
#[test]
fn mid_stream_subscriber_reconstructs_from_snapshot_and_deltas() {
    let cfg = ServeConfig {
        every: 10,
        snapshot_every: 4,
        shards: 1,
        ..feasible_cfg()
    };
    let records: Vec<ItemSet> = DatasetProfile::WebView1
        .source(7)
        .take_vec(200)
        .into_iter()
        .map(|t| t.into_items())
        .collect();

    // In-process reference: publications at stream_len 120, 130, …, 200.
    let mut pipe = cfg.pipeline_for("alpha");
    let mut final_release_line = None;
    for items in &records {
        pipe.advance(butterfly_repro::common::Transaction::new(0, items.clone()));
        if pipe.window().is_full() && pipe.since_publish() >= cfg.every {
            let r = pipe.publish_now().expect("full window");
            final_release_line = Some(release_event("alpha", r.stream_len, &r.release).to_string());
        }
    }
    assert!(pipe.flush().is_none(), "200 lands on the cadence exactly");
    let mut oracle = SubscriberState::new();
    oracle
        .observe(&Json::parse(&final_release_line.expect("9 publications")).unwrap())
        .unwrap();
    assert_eq!(oracle.stream_len(), Some(200));

    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = server.local_addr();

    // Subscriber A is present from the start and sees every event.
    let mut early = Client::connect(addr).expect("early connect");
    early
        .request(&Request::Subscribe {
            stream: "alpha".into(),
            frame: FrameMode::Json,
            from: None,
        })
        .expect("early subscribe");

    // Ingest 135 records and wait until the shard has fully processed them
    // (publications at 120 and 130 are fanned out before anyone else joins).
    let mut ingest = Client::connect(addr).expect("ingest connect");
    ingest
        .request(&Request::Ingest {
            stream: "alpha".into(),
            batch: records[..135].to_vec(),
        })
        .expect("first ingest");
    loop {
        let stats = ingest.request(&Request::Stats).expect("stats");
        let processed: u64 = stats
            .get("per_shard")
            .and_then(Json::as_array)
            .expect("per_shard")
            .iter()
            .map(|s| s.get("processed").and_then(Json::as_u64).unwrap_or(0))
            .sum();
        if processed >= 135 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }

    // Subscriber B joins mid-stream: it has missed the snapshot at 120 and
    // the delta at 130, and will first see the deltas at 140 and 150 —
    // unusable — then the snapshot at 160.
    let mut late = Client::connect(addr).expect("late connect");
    late.request(&Request::Subscribe {
        stream: "alpha".into(),
        frame: FrameMode::Json,
        from: None,
    })
    .expect("late subscribe");

    ingest
        .request(&Request::Ingest {
            stream: "alpha".into(),
            batch: records[135..].to_vec(),
        })
        .expect("second ingest");
    ingest.request(&Request::Shutdown).expect("shutdown");

    let drain = |client: &mut Client| -> SubscriberState {
        let mut state = SubscriberState::new();
        loop {
            let line = client.next_line().expect("read").expect("closed first");
            if line.get("event").and_then(Json::as_str) == Some("closed") {
                return state;
            }
            state.observe(&line).expect("no divergence");
        }
    };
    let early_state = drain(&mut early);
    let late_state = drain(&mut late);

    // A: syncs at 120 (skipping that publication's own base-0 delta), then
    // applies all 8 later deltas and verifies the snapshots at 160 and 200.
    assert_eq!(early_state.snapshots, 1);
    assert_eq!(early_state.deltas_skipped, 1);
    assert_eq!(early_state.deltas_applied, 8);
    assert_eq!(early_state.verified, 2);

    // B: skips the deltas at 140, 150, and 160 (its base predates the
    // sync), adopts the snapshot at 160, applies 170–200, verifies 200.
    assert_eq!(late_state.snapshots, 1);
    assert_eq!(late_state.deltas_skipped, 3);
    assert_eq!(late_state.deltas_applied, 4);
    assert_eq!(late_state.verified, 1);

    // Everyone converges on the in-process truth.
    assert_eq!(early_state.stream_len(), Some(200));
    assert_eq!(late_state.stream_len(), Some(200));
    assert_eq!(early_state.entries(), oracle.entries());
    assert_eq!(late_state.entries(), oracle.entries());
    server.join();
}

/// Same seed, two server instances: the wire output is reproducible run to
/// run (noise comes from the config seed, not from process state).
#[test]
fn same_seed_reproduces_across_server_instances() {
    let records: Vec<ItemSet> = DatasetProfile::Pos
        .source(11)
        .take_vec(130)
        .into_iter()
        .map(|t| t.into_items())
        .collect();
    let run = |seed: u64| -> Vec<String> {
        let cfg = ServeConfig {
            seed,
            ..feasible_cfg()
        };
        let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
        let mut sub = Client::connect(server.local_addr()).expect("connect");
        sub.request(&Request::Subscribe {
            stream: "s".into(),
            frame: FrameMode::Json,
            from: None,
        })
        .expect("subscribe");
        let mut ingest = Client::connect(server.local_addr()).expect("connect");
        ingest
            .request(&Request::Ingest {
                stream: "s".into(),
                batch: records.clone(),
            })
            .expect("ingest");
        ingest.request(&Request::Shutdown).expect("shutdown");
        let mut lines = Vec::new();
        loop {
            let line = sub.next_line().expect("read").expect("closed before EOF");
            let closed = line.get("event").and_then(Json::as_str) == Some("closed");
            lines.push(line.to_string());
            if closed {
                break;
            }
        }
        server.join();
        lines
    };
    assert_eq!(run(42), run(42), "same seed must reproduce");
    assert_ne!(run(42), run(43), "different seed must perturb differently");
}

/// A connection that both subscribes and issues `shutdown` must still get
/// its drain events: the shutdown ack must not close the connection before
/// the flush release and `closed` arrive (regression — dispatch used to end
/// the connection on the shutdown verb unconditionally).
#[test]
fn subscriber_issuing_shutdown_still_receives_drain_events() {
    let cfg = feasible_cfg();
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client
        .request(&Request::Subscribe {
            stream: "s".into(),
            frame: FrameMode::Json,
            from: None,
        })
        .expect("subscribe ack");
    let batch: Vec<ItemSet> = DatasetProfile::Pos
        .source(13)
        .take_vec(60)
        .into_iter()
        .map(|t| t.into_items())
        .collect();
    client
        .request(&Request::Ingest {
            stream: "s".into(),
            batch,
        })
        .expect("ingest reply");
    let reply = client.request(&Request::Shutdown).expect("shutdown reply");
    assert_eq!(reply.get("draining"), Some(&Json::Bool(true)));
    // 60 records never fill the 120-window, so the drain publishes nothing —
    // but the closed event must still arrive on this same connection.
    let line = client
        .next_line()
        .expect("read after shutdown")
        .expect("closed event must arrive before EOF");
    assert_eq!(line.to_string(), closed_event("s").to_string());
    server.join();
}

/// Overload: a tiny ingress queue in front of a deliberately slow shard
/// (publish every record) sheds with explicit `overloaded` replies whose
/// accepted/shed accounting matches the server's own counters.
#[test]
fn overload_sheds_explicitly_with_accurate_accounting() {
    let cfg = ServeConfig {
        shards: 1,
        window: 64,
        c: 2,
        k: 1,
        epsilon: 0.2,
        delta: 0.5,
        every: 1, // mine + publish per record: the worker cannot keep up
        queue_cap: 4,
        seed: 3,
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let mut source = DatasetProfile::Pos.source(21);
    let mut accepted = 0u64;
    let mut shed = 0u64;
    let mut saw_overloaded = false;
    let sent: u64 = 4 * 256;
    for _ in 0..4 {
        let batch: Vec<ItemSet> = (0..256)
            .map(|_| source.next_transaction().into_items())
            .collect();
        let reply = client
            .request(&Request::Ingest {
                stream: "hot".into(),
                batch,
            })
            .expect("ingest reply");
        accepted += reply
            .get("accepted")
            .and_then(Json::as_u64)
            .expect("accepted field");
        if reply.get("ok") == Some(&Json::Bool(false)) {
            assert_eq!(
                reply.get("error").and_then(Json::as_str),
                Some("overloaded"),
                "shed reply must be explicit: {reply}"
            );
            shed += reply
                .get("shed")
                .and_then(Json::as_u64)
                .expect("shed field");
            saw_overloaded = true;
        }
    }
    assert!(saw_overloaded, "cap 4 queue must shed a 256-record burst");
    assert_eq!(accepted + shed, sent, "every record accounted for");

    let stats = client.request(&Request::Stats).expect("stats");
    let per_shard = stats
        .get("per_shard")
        .and_then(Json::as_array)
        .expect("per_shard");
    assert_eq!(per_shard.len(), 1);
    assert_eq!(
        per_shard[0].get("ingested").and_then(Json::as_u64),
        Some(accepted),
        "server ingested counter must match replies"
    );
    assert_eq!(
        per_shard[0].get("shed").and_then(Json::as_u64),
        Some(shed),
        "server shed counter must match replies"
    );
    server.shutdown();
    server.join();
}

/// The `bind` wire op end to end: a stream bound to a non-default defense
/// before its first ingest publishes exactly what an in-process pipeline
/// built with that defense publishes, streams on the same server keep the
/// config default, and a bind arriving after the stream is active is
/// rejected (a pipeline's defense is a creation-time property).
#[test]
fn bind_overrides_one_streams_defense_before_first_ingest() {
    use butterfly_repro::butterfly::DefenseKind;
    let cfg = feasible_cfg();
    let records: Vec<ItemSet> = DatasetProfile::WebView1
        .source(5)
        .take_vec(130)
        .into_iter()
        .map(|t| t.into_items())
        .collect();

    // In-process references: "alpha" under the bound suppression defense,
    // "beta" under the config default (Butterfly).
    let replay = |key: &str, kind: DefenseKind| -> Vec<String> {
        let mut pipe = cfg.pipeline_with(key, kind);
        let mut lines = Vec::new();
        for items in &records {
            pipe.advance(butterfly_repro::common::Transaction::new(0, items.clone()));
            if pipe.window().is_full() && pipe.since_publish() >= cfg.every {
                let r = pipe.publish_now().expect("full window");
                lines.push(release_event(key, r.stream_len, &r.release).to_string());
            }
        }
        if let Some(r) = pipe.flush() {
            lines.push(release_event(key, r.stream_len, &r.release).to_string());
        }
        lines
    };
    let expected_alpha = replay("alpha", DefenseKind::Suppression);
    let expected_beta = replay("beta", cfg.defense.kind);
    assert_ne!(
        expected_alpha, expected_beta,
        "the override must actually change the output"
    );

    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = server.local_addr();
    let mut control = Client::connect(addr).expect("control connect");
    let ack = control
        .request(&Request::Bind {
            stream: "alpha".into(),
            defense: DefenseKind::Suppression,
        })
        .expect("bind ack");
    assert_eq!(ack.get("ok"), Some(&Json::Bool(true)), "got {ack}");
    assert_eq!(ack.get("defense").and_then(Json::as_str), Some("suppress"));

    let subscribe = |key: &str| -> Client {
        let mut c = Client::connect(addr).expect("subscriber connect");
        c.request(&Request::Subscribe {
            stream: key.into(),
            frame: FrameMode::Json,
            from: None,
        })
        .expect("subscribe ack");
        c
    };
    let mut sub_alpha = subscribe("alpha");
    let mut sub_beta = subscribe("beta");

    for key in ["alpha", "beta"] {
        let reply = control
            .request(&Request::Ingest {
                stream: key.into(),
                batch: records.clone(),
            })
            .expect("ingest reply");
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)));
    }

    // Both streams are active now: re-binding either must be refused.
    loop {
        let stats = control.request(&Request::Stats).expect("stats");
        let processed: u64 = stats
            .get("per_shard")
            .and_then(Json::as_array)
            .expect("per_shard")
            .iter()
            .map(|s| s.get("processed").and_then(Json::as_u64).unwrap_or(0))
            .sum();
        if processed >= 2 * records.len() as u64 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let refused = control
        .request(&Request::Bind {
            stream: "alpha".into(),
            defense: DefenseKind::PrivBasis,
        })
        .expect("late bind reply");
    assert_eq!(refused.get("ok"), Some(&Json::Bool(false)));
    assert!(
        refused
            .get("error")
            .and_then(Json::as_str)
            .is_some_and(|e| e.contains("already active")),
        "got {refused}"
    );

    control.request(&Request::Shutdown).expect("shutdown");
    let drain = |client: &mut Client| -> Vec<String> {
        let mut lines = Vec::new();
        loop {
            let line = client.next_line().expect("read").expect("closed first");
            if line.get("event").and_then(Json::as_str) == Some("closed") {
                return lines;
            }
            lines.push(line.to_string());
        }
    };
    assert_eq!(
        drain(&mut sub_alpha),
        expected_alpha,
        "bound stream diverged from the in-process suppression replay"
    );
    assert_eq!(
        drain(&mut sub_beta),
        expected_beta,
        "unbound stream must keep the config default defense"
    );
    server.join();
}

/// Frame negotiation end to end under the default I/O engine (the epoll
/// reactor on Linux): a binary-mode subscriber and a JSON-mode subscriber
/// on the same stream see the same releases — binary frames decode to event
/// documents string-identical to the NDJSON lines and to the in-process
/// replay — and binary-framed ingest drives the pipeline to exactly the
/// state NDJSON ingest would.
#[test]
fn binary_and_json_subscribers_see_identical_releases() {
    let cfg = feasible_cfg();
    let records: Vec<ItemSet> = DatasetProfile::WebView1
        .source(5)
        .take_vec(130)
        .into_iter()
        .map(|t| t.into_items())
        .collect();

    let mut pipe = cfg.pipeline_for("alpha");
    let mut expected: Vec<String> = Vec::new();
    for items in &records {
        pipe.advance(butterfly_repro::common::Transaction::new(0, items.clone()));
        if pipe.window().is_full() && pipe.since_publish() >= cfg.every {
            let r = pipe.publish_now().expect("full window");
            expected.push(release_event("alpha", r.stream_len, &r.release).to_string());
        }
    }
    if let Some(r) = pipe.flush() {
        expected.push(release_event("alpha", r.stream_len, &r.release).to_string());
    }
    assert_eq!(expected.len(), 2, "cadence at 120 plus drain flush at 130");

    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = server.local_addr();
    let mut sub_json = Client::connect(addr).expect("json subscriber");
    sub_json
        .request(&Request::Subscribe {
            stream: "alpha".into(),
            frame: FrameMode::Json,
            from: None,
        })
        .expect("json subscribe ack");
    let mut sub_bin = Client::connect(addr).expect("binary subscriber");
    let ack = sub_bin
        .request(&Request::Subscribe {
            stream: "alpha".into(),
            frame: FrameMode::Binary,
            from: None,
        })
        .expect("binary subscribe ack");
    assert_eq!(ack.get("ok"), Some(&Json::Bool(true)), "got {ack}");

    // Ingest over binary frames: same records, length-prefixed encoding.
    let mut ingest = Client::connect(addr).expect("ingest connect");
    ingest.set_frame(FrameMode::Binary);
    for chunk in records.chunks(40) {
        let reply = ingest
            .request(&Request::Ingest {
                stream: "alpha".into(),
                batch: chunk.to_vec(),
            })
            .expect("binary ingest reply");
        assert_eq!(
            reply.get("accepted").and_then(Json::as_u64),
            Some(chunk.len() as u64),
            "binary ingest must be accepted whole: {reply}"
        );
    }
    ingest.request(&Request::Shutdown).expect("shutdown reply");

    let drain = |client: &mut Client| -> Vec<String> {
        let mut lines = Vec::new();
        loop {
            let ev = client
                .next_event()
                .expect("subscriber read")
                .expect("closed event must arrive before EOF");
            if ev.get("event").and_then(Json::as_str) == Some("closed") {
                assert_eq!(ev.to_string(), closed_event("alpha").to_string());
                return lines;
            }
            lines.push(ev.to_string());
        }
    };
    assert_eq!(
        drain(&mut sub_json),
        expected,
        "JSON subscriber diverged from in-process replay"
    );
    assert_eq!(
        drain(&mut sub_bin),
        expected,
        "binary subscriber diverged from in-process replay"
    );
    server.join();
}

/// The blocking engine stays available behind `--io blocking` and is
/// byte-identical to the default engine (the reactor, where supported):
/// releases depend only on (config, seed, key, record order), never on the
/// connection I/O machinery.
#[test]
fn blocking_io_engine_is_byte_identical_to_default() {
    let records: Vec<ItemSet> = DatasetProfile::Pos
        .source(17)
        .take_vec(130)
        .into_iter()
        .map(|t| t.into_items())
        .collect();
    let run = |io: IoMode| -> Vec<String> {
        let cfg = ServeConfig {
            io,
            ..feasible_cfg()
        };
        let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
        let mut sub = Client::connect(server.local_addr()).expect("connect");
        sub.request(&Request::Subscribe {
            stream: "s".into(),
            frame: FrameMode::Json,
            from: None,
        })
        .expect("subscribe");
        let mut ingest = Client::connect(server.local_addr()).expect("connect");
        ingest
            .request(&Request::Ingest {
                stream: "s".into(),
                batch: records.clone(),
            })
            .expect("ingest");
        ingest.request(&Request::Shutdown).expect("shutdown");
        let mut lines = Vec::new();
        loop {
            let line = sub.next_line().expect("read").expect("closed before EOF");
            let closed = line.get("event").and_then(Json::as_str) == Some("closed");
            lines.push(line.to_string());
            if closed {
                break;
            }
        }
        server.join();
        lines
    };
    let blocking = run(IoMode::Blocking);
    let default = run(IoMode::default());
    assert_eq!(blocking, default, "I/O engine must not affect the bytes");
    assert!(
        blocking.len() > 1,
        "expected releases plus the closed event"
    );
}

/// Protocol edges over a raw socket: ping, stats shape, unknown ops,
/// malformed lines (recoverable), oversized lines (fatal), and ingest
/// rejection during drain.
#[test]
fn protocol_edges() {
    let cfg = feasible_cfg();
    let shards = cfg.shards;
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let stream = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .expect("timeout");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut roundtrip = |line: &str| -> String {
        writeln!(writer, "{line}").expect("write");
        writer.flush().expect("flush");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read");
        reply
    };

    let pong = roundtrip("{\"op\":\"ping\"}");
    assert!(pong.contains("\"pong\":true"), "got {pong}");

    let stats = Json::parse(&roundtrip("{\"op\":\"stats\"}")).expect("stats json");
    assert_eq!(
        stats
            .get("per_shard")
            .and_then(Json::as_array)
            .map(<[Json]>::len),
        Some(shards)
    );
    assert_eq!(stats.get("draining"), Some(&Json::Bool(false)));
    assert_eq!(
        stats.get("io").and_then(Json::as_str),
        Some(IoMode::default().name()),
        "stats must name the I/O engine"
    );
    if butterfly_repro::serve::REACTOR_SUPPORTED {
        let reactor = stats.get("reactor").expect("reactor telemetry in stats");
        assert!(
            reactor
                .get("fds")
                .and_then(Json::as_u64)
                .is_some_and(|n| n >= 3),
            "listener + wake pipe + this connection: {reactor}"
        );
        assert!(
            reactor.get("wakeups").and_then(Json::as_u64).is_some(),
            "got {reactor}"
        );
    }

    let unknown = roundtrip("{\"op\":\"frobnicate\"}");
    assert!(unknown.contains("unknown op"), "got {unknown}");

    // Malformed JSON gets an error reply but keeps the connection framed.
    let err = roundtrip("this is not json");
    assert!(err.contains("\"ok\":false"), "got {err}");
    let pong = roundtrip("{\"op\":\"ping\"}");
    assert!(
        pong.contains("\"pong\":true"),
        "connection must survive: {pong}"
    );

    // An oversized line cannot be resynced: the server replies with an
    // error (best effort — the teardown may RST past it) and closes this
    // connection, but keeps serving others. Writes may hit a broken pipe
    // once the server stops reading; that is the expected teardown.
    let huge = "x".repeat(2 * 1024 * 1024);
    let _ = writeln!(writer, "{huge}");
    let _ = writer.flush();
    let mut closed = false;
    for _ in 0..4 {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => {
                closed = true;
                break;
            }
            Ok(_) => assert!(
                line.contains("oversized"),
                "only the oversize error may precede the close: {line}"
            ),
        }
    }
    assert!(closed, "server must close after an oversized frame");
    let mut fresh = Client::connect(server.local_addr()).expect("fresh connect");
    let pong = fresh.request(&Request::Ping).expect("ping reply");
    assert_eq!(
        pong.get("pong"),
        Some(&Json::Bool(true)),
        "server must survive an oversized frame"
    );

    // During drain, ingests on a surviving connection are refused
    // explicitly. The connection subscribes to an idle stream first so its
    // handler lingers through the drain (subscriber connections outlive the
    // flag until their streams close).
    let mut late = Client::connect(server.local_addr()).expect("late connect");
    late.request(&Request::Subscribe {
        stream: "idle".into(),
        frame: FrameMode::Json,
        from: None,
    })
    .expect("subscribe ack");
    server.shutdown();
    let reply = late
        .request(&Request::Ingest {
            stream: "s".into(),
            batch: vec![ItemSet::from_ids([1, 2])],
        })
        .expect("late ingest reply");
    assert_eq!(
        reply.get("error").and_then(Json::as_str),
        Some("shutting-down"),
        "got {reply}"
    );
    server.join();
}

/// Log-served catch-up end to end: a subscriber that connects only after
/// every publication already happened asks `from: earliest` and receives
/// the logged releases — byte-identical to the full `release` events an
/// in-process replay of the same records produces — even under
/// `snapshot_every > 1`, where the live wire at those moments carried
/// deltas. `window:<n>` trims the replay, binary framing converts to the
/// identical event JSON, and `from` without a WAL is a refused subscribe.
#[test]
fn late_subscriber_catches_up_from_the_wal() {
    use butterfly_repro::serve::protocol::CatchUp;
    use butterfly_repro::serve::WalConfig;

    let wal_dir = std::env::temp_dir().join(format!("bfly-serve-catchup-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let cfg = ServeConfig {
        every: 10,
        snapshot_every: 4,
        shards: 1,
        wal: Some(WalConfig::new(&wal_dir)),
        ..feasible_cfg()
    };
    // 205 records: publications at 120…200 on cadence, then one drain
    // flush at 205. The 5 trailing records also guarantee the stats
    // processed counter only reaches 205 after publication 200 fanned out.
    let records: Vec<ItemSet> = DatasetProfile::WebView1
        .source(11)
        .take_vec(205)
        .into_iter()
        .map(|t| t.into_items())
        .collect();

    // In-process reference: the full release at every publication.
    let mut pipe = cfg.pipeline_for("alpha");
    let mut expected: Vec<String> = Vec::new();
    for items in &records {
        pipe.advance(butterfly_repro::common::Transaction::new(0, items.clone()));
        if pipe.window().is_full() && pipe.since_publish() >= cfg.every {
            let r = pipe.publish_now().expect("full window");
            expected.push(release_event("alpha", r.stream_len, &r.release).to_string());
        }
    }
    assert!(pipe.flush().is_some(), "5 pending records flush at drain");
    assert_eq!(expected.len(), 9, "cadence publications at 120…200");

    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = server.local_addr();
    let mut ingest = Client::connect(addr).expect("ingest connect");
    ingest
        .request(&Request::Ingest {
            stream: "alpha".into(),
            batch: records.clone(),
        })
        .expect("ingest reply");
    loop {
        let stats = ingest.request(&Request::Stats).expect("stats");
        let processed: u64 = stats
            .get("per_shard")
            .and_then(Json::as_array)
            .expect("per_shard")
            .iter()
            .map(|s| s.get("processed").and_then(Json::as_u64).unwrap_or(0))
            .sum();
        if processed >= 205 {
            // The WAL stats block is present and counting.
            let appended = stats
                .get("wal")
                .and_then(|w| w.get("records_appended"))
                .and_then(Json::as_u64)
                .expect("stats carries a wal block when the WAL is on");
            assert!(appended > 0, "got {stats}");
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }

    // Everything already happened; these subscribers saw none of it live.
    let mut late = Client::connect(addr).expect("late connect");
    let ack = late
        .request(&Request::Subscribe {
            stream: "alpha".into(),
            frame: FrameMode::Json,
            from: Some(CatchUp::Earliest),
        })
        .expect("subscribe ack");
    assert_eq!(ack.get("ok"), Some(&Json::Bool(true)));
    let mut caught_up: Vec<String> = Vec::new();
    for _ in 0..expected.len() {
        let line = late
            .next_line()
            .expect("catch-up read")
            .expect("catch-up event before EOF");
        caught_up.push(line.to_string());
    }
    assert_eq!(caught_up, expected, "catch-up diverged from in-process");

    // window:200 trims the replay to positions >= 200.
    let mut tail = Client::connect(addr).expect("tail connect");
    tail.request(&Request::Subscribe {
        stream: "alpha".into(),
        frame: FrameMode::Json,
        from: Some(CatchUp::Window(200)),
    })
    .expect("tail subscribe ack");
    let line = tail
        .next_line()
        .expect("tail read")
        .expect("one catch-up event");
    assert_eq!(line.to_string(), expected[8]);

    // Binary framing: the converted events are string-identical.
    let mut bin = Client::connect(addr).expect("binary connect");
    bin.request(&Request::Subscribe {
        stream: "alpha".into(),
        frame: FrameMode::Binary,
        from: Some(CatchUp::Earliest),
    })
    .expect("binary subscribe ack");
    for want in &expected {
        let event = bin
            .next_event()
            .expect("binary catch-up read")
            .expect("binary catch-up event");
        assert_eq!(&event.to_string(), want);
    }

    // Drain: each subscriber then rides the live wire — the flush
    // publication at 205 (a delta under snapshot_every = 4) and `closed`.
    ingest.request(&Request::Shutdown).expect("shutdown reply");
    for sub in [&mut late, &mut tail, &mut bin] {
        let delta = sub
            .next_event()
            .expect("drain read")
            .expect("flush delta before close");
        assert_eq!(
            delta.get("event").and_then(Json::as_str),
            Some("release_delta"),
            "got {delta}"
        );
        assert_eq!(delta.get("stream_len").and_then(Json::as_u64), Some(205));
        let closed = sub.next_event().expect("close read").expect("closed event");
        assert_eq!(closed.get("event").and_then(Json::as_str), Some("closed"));
    }
    server.join();
    std::fs::remove_dir_all(&wal_dir).expect("wal dir cleanup");
}

/// `from` without `--wal-dir` is refused outright — there is no log to
/// serve history from, and silently downgrading to live-only would hand
/// the subscriber a gap it cannot detect.
#[test]
fn catchup_subscribe_without_a_wal_is_refused() {
    use butterfly_repro::serve::protocol::CatchUp;

    let server = Server::bind("127.0.0.1:0", feasible_cfg()).expect("bind");
    let mut c = Client::connect(server.local_addr()).expect("connect");
    let reply = c
        .request(&Request::Subscribe {
            stream: "alpha".into(),
            frame: FrameMode::Json,
            from: Some(CatchUp::Earliest),
        })
        .expect("subscribe reply");
    assert_eq!(reply.get("ok"), Some(&Json::Bool(false)));
    let err = reply
        .get("error")
        .and_then(Json::as_str)
        .expect("error text");
    assert!(err.contains("--wal-dir"), "got {err}");
    // The connection survives and was NOT registered as a subscriber: a
    // live subscribe afterwards works from a clean slate.
    let ack = c
        .request(&Request::Subscribe {
            stream: "alpha".into(),
            frame: FrameMode::Json,
            from: None,
        })
        .expect("plain subscribe");
    assert_eq!(ack.get("ok"), Some(&Json::Bool(true)));
    server.join();
}
