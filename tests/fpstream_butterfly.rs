//! Integration: Butterfly is miner-agnostic — it sanitizes FP-stream's
//! *approximate* long-horizon output just as it does Moment's exact
//! sliding-window output. (The paper assumes an exact miner; this is the
//! natural extension to the tilted-time model.)

use butterfly_repro::butterfly::metrics::avg_pred;
use butterfly_repro::butterfly::{audit_release, BiasScheme, PrivacySpec, Publisher};
use butterfly_repro::datagen::DatasetProfile;
use butterfly_repro::mining::{FpStream, FpStreamConfig};

#[test]
fn butterfly_over_fpstream_output() {
    // Mine 10 batches approximately, then sanitize the horizon query.
    let mut fps = FpStream::new(FpStreamConfig {
        batch_size: 400,
        sigma: 0.06,
        epsilon: 0.015,
    });
    let mut stream = DatasetProfile::WebView1.source(31);
    for _ in 0..4000 {
        fps.push(stream.next_transaction());
    }
    let approx = fps.frequent_over(10);
    assert!(!approx.is_empty(), "nothing mined to sanitize");

    // FP-stream estimates at this horizon are ≥ (σ−ε)·N ≈ 180; a contract
    // with C at that floor is feasible and meaningful.
    let c = approx.iter().map(|e| e.support).min().unwrap();
    let spec = PrivacySpec::new(c, 5, 0.02, 0.5);
    let mut publisher = Publisher::new(
        spec,
        BiasScheme::Hybrid {
            lambda: 0.4,
            gamma: 2,
        },
        8,
    );
    let release = publisher.publish(&approx);
    assert_eq!(release.len(), approx.len());
    assert!(audit_release(&spec, &release).is_empty());
    assert!(avg_pred(&release) <= spec.epsilon() * 1.5);

    // Republication applies across horizon re-queries too: an unchanged
    // estimate republishes its pinned value.
    let again = publisher.publish(&approx);
    assert_eq!(again, release);
}
