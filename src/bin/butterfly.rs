//! `butterfly` — command-line front end for the reproduction.
//!
//! ```text
//! butterfly gen     --profile webview1 --count 10000 --seed 1 --out stream.dat
//! butterfly mine    --input stream.dat --min-support 25 [--closed] [--miner fpgrowth]
//! butterfly attack  --input stream.dat --window 2000 --min-support 25 --vulnerable 5
//! butterfly protect --input stream.dat --window 2000 --min-support 25 --vulnerable 5 \
//!                   --epsilon 0.016 --delta 0.4 --scheme hybrid --lambda 0.4 --every 100
//! butterfly serve   --addr 127.0.0.1:7878 --shards 4 --window 2000 --min-support 25
//! ```
//!
//! `protect` writes one JSON object per published window to stdout (or
//! `--out`), containing only sanitized supports — the same trust boundary a
//! deployment would have. `serve` exposes the same pipeline as a sharded
//! multi-tenant TCP service (see `bfly_serve`).

use butterfly_repro::butterfly::{
    BiasScheme, DefenseKind, DefenseSpec, PrivacyDefense, PrivacySpec, StreamPipeline,
};
use butterfly_repro::common::{io as dat, Database, Json};
use butterfly_repro::datagen::DatasetProfile;
use butterfly_repro::inference::find_intra_window_breaches;
use butterfly_repro::mining::closed::closed_subset;
use butterfly_repro::mining::{Apriori, BackendKind, Eclat, FpGrowth};
use butterfly_repro::serve::{parse_node_list, IoMode, ServeConfig, ServeRole, Server, WalConfig};
use std::collections::HashMap;
use std::io::{BufWriter, Write};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    if matches!(command.as_str(), "help" | "--help" | "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let opts = match parse_flags(command, rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    // `--threads` applies to every subcommand: it pins the worker count of
    // the workspace pool (attack enumeration, order DP). Absent, the
    // `BFLY_THREADS` env var or the hardware decides.
    if let Some(threads) = opts.get("threads") {
        match threads.parse::<usize>() {
            Ok(n) if n > 0 => butterfly_repro::common::pool::set_threads(n),
            _ => {
                eprintln!("error: --threads needs a positive integer, got {threads:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    let result = match command.as_str() {
        "gen" => cmd_gen(&opts),
        "mine" => cmd_mine(&opts),
        "rules" => cmd_rules(&opts),
        "attack" => cmd_attack(&opts),
        "protect" => cmd_protect(&opts),
        "serve" => cmd_serve(&opts),
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "butterfly — output-privacy protection for stream frequent-pattern mining

USAGE:
  butterfly gen     --profile <webview1|pos> --count <N> [--seed <S>] [--out <file.dat>]
  butterfly mine    --input <file.dat> --min-support <C> [--closed] [--miner <apriori|fpgrowth|eclat>]
                    [--out <file>]
  butterfly rules   --input <file.dat> --min-support <C> --min-confidence <F> [--top <N>]
  butterfly attack  --input <file.dat> --window <H> --min-support <C> --vulnerable <K>
  butterfly protect --input <file.dat> --window <H> --min-support <C> --vulnerable <K>
                    --epsilon <E> --delta <D> [--scheme <basic|order|ratio|hybrid>]
                    [--backend <moment|apriori|eclat|fpgrowth|charm|closed|fpstream|damped>]
                    [--lambda <L>] [--gamma <G>] [--every <N>] [--seed <S>] [--incremental]
                    [--defense <butterfly|privbasis|suppress>] [--dp-budget <E>] [--dp-top-k <N>]
                    [--out <file.jsonl>]
  butterfly serve   [--addr <ip:port>] [--shards <N>] [--window <H>] [--min-support <C>]
                    [--vulnerable <K>] [--epsilon <E>] [--delta <D>] [--scheme <...>]
                    [--backend <...>] [--lambda <L>] [--gamma <G>] [--every <N>]
                    [--snapshot-every <N>] [--seed <S>] [--queue-cap <N>] [--out-queue-cap <N>]
                    [--io <blocking|reactor>] [--max-frame-bytes <N>] [--ingest-chunk <N>]
                    [--port-file <path>] [--wal-dir <dir>] [--wal-sync <always|interval:N|never>]
                    [--defense <...>] [--dp-budget <E>] [--dp-top-k <N>]
                    [--role <node|router>] [--nodes <ip:port,ip:port,...>]

`protect --incremental` runs the delta-maintained release engine (identical
output, faster on overlapping windows; cache counters go to stderr).
`serve --snapshot-every N` (N > 1) ships a release_delta event per
publication plus a full release snapshot every N-th one.
`--defense` swaps the publication stage: butterfly (default; FEC bias +
noise), privbasis (ε-DP top-k with --dp-budget/--dp-top-k), or suppress
(sensitive-itemset hiding at exact supports). Serve clients can override
per stream with a `bind` request before the stream's first ingest.
`serve --io` picks the connection I/O engine: reactor (default on Linux;
one epoll event-loop thread) or blocking (two threads per connection).
Clients negotiate NDJSON or binary framing per frame by leading byte;
`--max-frame-bytes` caps both encodings and `--ingest-chunk` sets the
batch size for shard submissions.

`serve --wal-dir` turns on the per-shard write-ahead release log: every
accepted ingest and every publication is logged (durability per --wal-sync,
default interval:64), a restart on the same directory replays the log back
to the exact pre-crash state, and subscribers may catch up from retained
log history by adding from: earliest or from: window:<n> to subscribe.

`serve --role router --nodes a:p,b:p,...` starts a stateless routing tier
instead of a mining node: clients speak the identical protocol to the
router, which maps each stream key onto the node that owns it (fnv1a(key)
mod N*shards slots) and forwards ingest/bind, merges stats, and proxies
subscriptions (including WAL catch-up served by the owning node). Every
node should run with the same --shards and pipeline knobs; durability
stays on the nodes (--wal-dir conflicts with --role router).

Every command also accepts --threads <N> to pin the worker-thread count of
the parallel phases (default: BFLY_THREADS, else all hardware threads;
results are identical at any thread count).";

type Flags = HashMap<String, String>;

/// `(name, takes_value)` — flags each subcommand accepts, beyond `--threads`.
const FLAG_TABLE: &[(&str, &[(&str, bool)])] = &[
    (
        "gen",
        &[
            ("profile", true),
            ("count", true),
            ("seed", true),
            ("out", true),
        ],
    ),
    (
        "mine",
        &[
            ("input", true),
            ("min-support", true),
            ("closed", false),
            ("miner", true),
            ("out", true),
        ],
    ),
    (
        "rules",
        &[
            ("input", true),
            ("min-support", true),
            ("min-confidence", true),
            ("top", true),
        ],
    ),
    (
        "attack",
        &[
            ("input", true),
            ("window", true),
            ("min-support", true),
            ("vulnerable", true),
        ],
    ),
    (
        "protect",
        &[
            ("input", true),
            ("window", true),
            ("min-support", true),
            ("vulnerable", true),
            ("epsilon", true),
            ("delta", true),
            ("scheme", true),
            ("backend", true),
            ("lambda", true),
            ("gamma", true),
            ("every", true),
            ("seed", true),
            ("incremental", false),
            ("defense", true),
            ("dp-budget", true),
            ("dp-top-k", true),
            ("out", true),
        ],
    ),
    (
        "serve",
        &[
            ("addr", true),
            ("shards", true),
            ("window", true),
            ("min-support", true),
            ("vulnerable", true),
            ("epsilon", true),
            ("delta", true),
            ("scheme", true),
            ("backend", true),
            ("lambda", true),
            ("gamma", true),
            ("every", true),
            ("snapshot-every", true),
            ("seed", true),
            ("queue-cap", true),
            ("out-queue-cap", true),
            ("io", true),
            ("max-frame-bytes", true),
            ("ingest-chunk", true),
            ("port-file", true),
            ("wal-dir", true),
            ("wal-sync", true),
            ("defense", true),
            ("dp-budget", true),
            ("dp-top-k", true),
            ("role", true),
            ("nodes", true),
        ],
    ),
];

/// Parse `--flag value` pairs, rejecting any flag the subcommand does not
/// declare — a typo like `--schme` is an error naming the valid set, never
/// a silently ignored option.
fn parse_flags(command: &str, args: &[String]) -> Result<Flags, String> {
    let allowed = FLAG_TABLE
        .iter()
        .find(|(cmd, _)| *cmd == command)
        .map(|(_, flags)| *flags)
        .ok_or_else(|| {
            let commands: Vec<&str> = FLAG_TABLE.iter().map(|(c, _)| *c).collect();
            format!(
                "unknown command {command:?} (valid: {})",
                commands.join(", ")
            )
        })?;
    let mut flags = Flags::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        let Some(name) = arg.strip_prefix("--") else {
            return Err(format!("unexpected positional argument {arg:?}"));
        };
        let takes_value = if name == "threads" {
            true
        } else {
            match allowed.iter().find(|(n, _)| *n == name) {
                Some((_, takes_value)) => *takes_value,
                None => {
                    let mut valid: Vec<String> =
                        allowed.iter().map(|(n, _)| format!("--{n}")).collect();
                    valid.push("--threads".to_string());
                    return Err(format!(
                        "unknown flag --{name} for {command} (valid: {})",
                        valid.join(", ")
                    ));
                }
            }
        };
        if !takes_value {
            flags.insert(name.to_string(), "true".to_string());
            continue;
        }
        let value = iter
            .next()
            .ok_or_else(|| format!("flag --{name} needs a value"))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn req<'a>(flags: &'a Flags, name: &str) -> Result<&'a str, String> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{name}"))
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid {what}: {s:?}"))
}

/// `--out <path>` or stdout, buffered either way. Callers must `flush()`.
fn out_writer(flags: &Flags) -> Result<Box<dyn Write>, String> {
    Ok(match flags.get("out") {
        Some(path) => Box::new(BufWriter::new(
            std::fs::File::create(path).map_err(|e| e.to_string())?,
        )),
        None => Box::new(BufWriter::new(std::io::stdout().lock())),
    })
}

/// Shared by `protect` and `serve`: `--defense` plus the PrivBasis knobs.
/// Unknown names are rejected at parse time with the valid list — the same
/// bind-time UX as unknown flags and `PrivacySpec::checked`.
fn parse_defense(flags: &Flags) -> Result<DefenseSpec, String> {
    let kind: DefenseKind = flags
        .get("defense")
        .map_or(DefenseKind::Butterfly.name(), String::as_str)
        .parse()
        .map_err(|e: butterfly_repro::common::Error| e.to_string())?;
    let mut dspec = DefenseSpec::new(kind);
    if let Some(v) = flags.get("dp-budget") {
        dspec.dp_budget = parse(v, "dp-budget")?;
    }
    if let Some(v) = flags.get("dp-top-k") {
        dspec.dp_top_k = parse(v, "dp-top-k")?;
    }
    dspec.validate()?;
    Ok(dspec)
}

/// Shared by `protect` and `serve`: `--scheme` plus its `--lambda`/`--gamma`
/// parameters.
fn parse_scheme(flags: &Flags) -> Result<BiasScheme, String> {
    let gamma: usize = parse(flags.get("gamma").map_or("2", String::as_str), "gamma")?;
    let lambda: f64 = parse(flags.get("lambda").map_or("0.4", String::as_str), "lambda")?;
    match flags.get("scheme").map_or("hybrid", String::as_str) {
        "basic" => Ok(BiasScheme::Basic),
        "order" => Ok(BiasScheme::OrderPreserving { gamma }),
        "ratio" => Ok(BiasScheme::RatioPreserving),
        "hybrid" => Ok(BiasScheme::Hybrid { lambda, gamma }),
        other => Err(format!("unknown scheme {other:?}")),
    }
}

fn cmd_gen(flags: &Flags) -> Result<(), String> {
    let profile = match req(flags, "profile")? {
        "webview1" => DatasetProfile::WebView1,
        "pos" => DatasetProfile::Pos,
        other => return Err(format!("unknown profile {other:?}")),
    };
    let count: usize = parse(req(flags, "count")?, "count")?;
    let seed: u64 = parse(flags.get("seed").map_or("0", String::as_str), "seed")?;
    let txs = profile.source(seed).take_vec(count);
    let db = Database::from_records(txs);
    match flags.get("out") {
        Some(path) => dat::save_dat(path, &db).map_err(|e| e.to_string())?,
        None => dat::write_dat(std::io::stdout().lock(), &db).map_err(|e| e.to_string())?,
    }
    eprintln!(
        "generated {} transactions ({} distinct items, mean length {:.2})",
        db.len(),
        db.alphabet().len(),
        db.mean_record_len()
    );
    Ok(())
}

fn cmd_mine(flags: &Flags) -> Result<(), String> {
    let db = dat::load_dat(req(flags, "input")?).map_err(|e| e.to_string())?;
    let c: u64 = parse(req(flags, "min-support")?, "min-support")?;
    let miner = flags.get("miner").map_or("fpgrowth", String::as_str);
    let mut frequent = match miner {
        "apriori" => Apriori::new(c).mine(&db),
        "fpgrowth" => FpGrowth::new(c).mine(&db),
        "eclat" => Eclat::new(c).mine(&db),
        other => return Err(format!("unknown miner {other:?}")),
    };
    if flags.contains_key("closed") {
        frequent = closed_subset(&frequent);
    }
    let mut out = out_writer(flags)?;
    write!(out, "{frequent}").map_err(|e| e.to_string())?;
    out.flush().map_err(|e| e.to_string())?;
    eprintln!(
        "{} itemsets at C={c} over {} records",
        frequent.len(),
        db.len()
    );
    Ok(())
}

fn cmd_rules(flags: &Flags) -> Result<(), String> {
    use butterfly_repro::mining::generate_rules;
    let db = dat::load_dat(req(flags, "input")?).map_err(|e| e.to_string())?;
    let c: u64 = parse(req(flags, "min-support")?, "min-support")?;
    let min_conf: f64 = parse(req(flags, "min-confidence")?, "min-confidence")?;
    let top: usize = parse(flags.get("top").map_or("25", String::as_str), "top")?;
    let frequent = FpGrowth::new(c).mine(&db);
    let rules = generate_rules(&frequent, min_conf);
    for rule in rules.iter().take(top) {
        println!("{rule}");
    }
    eprintln!(
        "{} rules at C={c}, confidence ≥ {min_conf} (showing up to {top})",
        rules.len()
    );
    Ok(())
}

fn cmd_attack(flags: &Flags) -> Result<(), String> {
    let db = dat::load_dat(req(flags, "input")?).map_err(|e| e.to_string())?;
    let window: usize = parse(req(flags, "window")?, "window")?;
    let c: u64 = parse(req(flags, "min-support")?, "min-support")?;
    let k: u64 = parse(req(flags, "vulnerable")?, "vulnerable")?;
    if db.len() < window {
        return Err(format!(
            "stream has {} records, window is {window}",
            db.len()
        ));
    }
    let tail = Database::from_records(db.records()[db.len() - window..].to_vec());
    let full = FpGrowth::new(c).mine(&tail);
    let breaches = find_intra_window_breaches(full.as_map(), k);
    println!(
        "window of last {window} records: {} published itemsets, {} inferable vulnerable patterns (K={k})",
        full.len(),
        breaches.len()
    );
    for b in breaches.iter().take(50) {
        println!("  {}  support {}", b.pattern, b.support);
    }
    if breaches.len() > 50 {
        println!("  ... ({} more)", breaches.len() - 50);
    }
    Ok(())
}

fn cmd_protect(flags: &Flags) -> Result<(), String> {
    let db = dat::load_dat(req(flags, "input")?).map_err(|e| e.to_string())?;
    let window: usize = parse(req(flags, "window")?, "window")?;
    let c: u64 = parse(req(flags, "min-support")?, "min-support")?;
    let k: u64 = parse(req(flags, "vulnerable")?, "vulnerable")?;
    let epsilon: f64 = parse(req(flags, "epsilon")?, "epsilon")?;
    let delta: f64 = parse(req(flags, "delta")?, "delta")?;
    let every: usize = parse(flags.get("every").map_or("1", String::as_str), "every")?;
    let seed: u64 = parse(flags.get("seed").map_or("0", String::as_str), "seed")?;
    let scheme = parse_scheme(flags)?;
    if every == 0 {
        return Err("--every must be positive".into());
    }
    let backend: BackendKind = flags
        .get("backend")
        .map_or("moment", String::as_str)
        .parse()
        .map_err(|e: butterfly_repro::common::Error| e.to_string())?;
    let dspec = parse_defense(flags)?;
    let spec = PrivacySpec::new(c, k, epsilon, delta);
    let incremental = flags.contains_key("incremental");
    let defense = dspec.build(spec, scheme, seed, incremental);
    let mut pipeline = StreamPipeline::from_parts(window, backend, defense);

    let mut out = out_writer(flags)?;
    let mut published = 0usize;
    for record in db.records() {
        pipeline.advance(record.clone());
        if pipeline.window().is_full() && pipeline.since_publish() >= every {
            let release = pipeline.publish_now().map_err(|e| e.to_string())?;
            let line = Json::obj([
                ("stream_len", Json::from(release.stream_len)),
                ("itemsets", release.release.wire_itemsets()),
            ]);
            writeln!(out, "{line}").map_err(|e| e.to_string())?;
            published += 1;
        }
    }
    out.flush().map_err(|e| e.to_string())?;
    eprintln!(
        "published {published} sanitized windows (C={c}, K={k}, ε={epsilon}, δ={delta}, {}, backend {}, defense {})",
        scheme.name(),
        backend.name(),
        dspec.kind
    );
    if let Some((reuse, warm, full)) = pipeline.defense().incremental_stats() {
        eprintln!(
            "incremental engine: {reuse} windows fully reused the DP cache, {warm} warm-started, {full} solved from scratch"
        );
    }
    if let Some(s) = pipeline.defense().suppression_stats() {
        eprintln!(
            "suppression: {} breaches closed by removing {} itemsets ({} survived)",
            s.breaches_found, s.suppressed, s.published
        );
    }
    Ok(())
}

fn cmd_serve(flags: &Flags) -> Result<(), String> {
    let mut cfg = ServeConfig::default();
    if let Some(v) = flags.get("shards") {
        cfg.shards = parse(v, "shards")?;
    }
    if let Some(v) = flags.get("window") {
        cfg.window = parse(v, "window")?;
    }
    if let Some(v) = flags.get("min-support") {
        cfg.c = parse(v, "min-support")?;
    }
    if let Some(v) = flags.get("vulnerable") {
        cfg.k = parse(v, "vulnerable")?;
    }
    if let Some(v) = flags.get("epsilon") {
        cfg.epsilon = parse(v, "epsilon")?;
    }
    if let Some(v) = flags.get("delta") {
        cfg.delta = parse(v, "delta")?;
    }
    if let Some(v) = flags.get("every") {
        cfg.every = parse(v, "every")?;
    }
    if let Some(v) = flags.get("snapshot-every") {
        cfg.snapshot_every = parse(v, "snapshot-every")?;
    }
    if let Some(v) = flags.get("seed") {
        cfg.seed = parse(v, "seed")?;
    }
    if let Some(v) = flags.get("queue-cap") {
        cfg.queue_cap = parse(v, "queue-cap")?;
    }
    if let Some(v) = flags.get("out-queue-cap") {
        cfg.out_queue_cap = parse(v, "out-queue-cap")?;
    }
    if let Some(v) = flags.get("io") {
        cfg.io = v.parse()?;
    }
    if let Some(v) = flags.get("max-frame-bytes") {
        cfg.max_frame_bytes = parse(v, "max-frame-bytes")?;
    }
    if let Some(v) = flags.get("ingest-chunk") {
        cfg.ingest_chunk = parse(v, "ingest-chunk")?;
    }
    if let Some(dir) = flags.get("wal-dir") {
        let mut wal = WalConfig::new(dir);
        if let Some(v) = flags.get("wal-sync") {
            wal.sync = v.parse()?;
        }
        cfg.wal = Some(wal);
    } else if flags.get("wal-sync").is_some() {
        return Err("--wal-sync requires --wal-dir".into());
    }
    if let Some(v) = flags.get("role") {
        cfg.role = v.parse()?;
    }
    if let Some(v) = flags.get("nodes") {
        cfg.nodes = parse_node_list(v)?;
    }
    if cfg.role == ServeRole::Router && flags.get("io").is_none() {
        // Router forwarding is synchronous per connection; the reactor
        // default only applies to nodes (validate() rejects the combination
        // when asked for explicitly).
        cfg.io = IoMode::Blocking;
    }
    cfg.scheme = parse_scheme(flags)?;
    cfg.defense = parse_defense(flags)?;
    if let Some(v) = flags.get("backend") {
        cfg.backend = v
            .parse()
            .map_err(|e: butterfly_repro::common::Error| e.to_string())?;
    }
    let addr = flags.get("addr").map_or("127.0.0.1:7878", String::as_str);
    let server = Server::bind(addr, cfg.clone()).map_err(|e| e.to_string())?;
    let local = server.local_addr();
    // The port-file handshake lets scripts bind port 0 and still find us.
    // Written atomically (temp + rename) so a polling reader never observes
    // a partial line.
    if let Some(path) = flags.get("port-file") {
        write_port_file(path, local).map_err(|e| e.to_string())?;
    }
    eprintln!(
        "serving on {local}: {} shards, window {}, C={}, K={}, ε={}, δ={}, {}, backend {}, every {}, snapshot-every {}, io {}",
        cfg.shards,
        cfg.window,
        cfg.c,
        cfg.k,
        cfg.epsilon,
        cfg.delta,
        cfg.scheme.name(),
        cfg.backend.name(),
        cfg.every,
        cfg.snapshot_every,
        cfg.io.name()
    );
    if let Some(w) = &cfg.wal {
        eprintln!("wal: dir {}, sync {}", w.dir.display(), w.sync);
    }
    if cfg.role == ServeRole::Router {
        let nodes: Vec<String> = cfg.nodes.iter().map(|a| a.to_string()).collect();
        eprintln!(
            "role router: {} nodes [{}], {} slots",
            cfg.nodes.len(),
            nodes.join(", "),
            cfg.nodes.len() * cfg.shards
        );
    }
    server.run_until_shutdown();
    eprintln!("drained and stopped");
    Ok(())
}

/// Atomic `--port-file` write: the address lands via rename, so a reader
/// polling for the file never observes an empty or half-written line.
fn write_port_file(path: &str, addr: std::net::SocketAddr) -> std::io::Result<()> {
    let tmp = format!("{path}.tmp.{}", std::process::id());
    std::fs::write(&tmp, format!("{addr}\n"))?;
    std::fs::rename(&tmp, path)
}
