//! # butterfly-repro
//!
//! A from-scratch Rust reproduction of **"Butterfly: Protecting Output
//! Privacy in Stream Mining"** (Ting Wang & Ling Liu, ICDE 2008).
//!
//! This facade crate re-exports the workspace's public API so examples and
//! downstream users have a single import surface:
//!
//! * [`common`] — itemsets, patterns with negation, transactions, sliding
//!   windows ([`bfly_common`]).
//! * [`datagen`] — synthetic BMS-WebView-1 / BMS-POS stand-in stream
//!   generators ([`bfly_datagen`]).
//! * [`mining`] — Apriori, FP-Growth, Moment (sliding-window closed
//!   itemsets), FP-stream ([`bfly_mining`]).
//! * [`inference`] — the attack engine: inclusion–exclusion derivation,
//!   support bounds, intra-/inter-window breach detection
//!   ([`bfly_inference`]).
//! * [`butterfly`] — the paper's contribution: basic / order-preserving /
//!   ratio-preserving / hybrid output perturbation and the stream publisher
//!   ([`bfly_core`]).
//! * [`serve`] — the sharded multi-tenant TCP stream service: per-key
//!   pipelines, bounded-queue backpressure, subscriber fan-out
//!   ([`bfly_serve`]).
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`; in short:
//!
//! ```text
//! stream → SlidingWindow → MomentMiner → Butterfly publisher → sanitized output
//!                                              ↑
//!                       (ε, δ, C, K) privacy/precision contract
//! ```

pub use bfly_common as common;
pub use bfly_core as butterfly;
pub use bfly_datagen as datagen;
pub use bfly_inference as inference;
pub use bfly_mining as mining;
pub use bfly_serve as serve;
